"""Unit + property tests for mutant enumeration (Section 4.1-4.2)."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AccessPattern,
    LEAST_CONSTRAINED,
    MOST_CONSTRAINED,
    count_mutants,
    enumerate_mutants,
)
from repro.core.mutants import insertions_for
from repro.isa import assemble
from repro.switchsim import SwitchConfig

from tests.test_core_constraints import LISTING_1, listing1_pattern

CONFIG = SwitchConfig()


def test_compact_mutant_enumerated_first():
    pattern = listing1_pattern()
    first = next(iter(enumerate_mutants(pattern, MOST_CONSTRAINED, CONFIG)))
    assert first.stages == (2, 5, 9)
    assert first.passes == 1
    assert first.recirculations == 0


def test_most_constrained_respects_ingress_window():
    """RTS must stay in stages 1-10: x2 <= 7 for every mc mutant."""
    pattern = listing1_pattern()
    mutants = list(enumerate_mutants(pattern, MOST_CONSTRAINED, CONFIG))
    assert mutants, "cache must have mc mutants"
    for mutant in mutants:
        x1, x2, x3 = mutant.stages
        assert 2 <= x1 <= 4
        assert 5 <= x2 <= 7
        assert x2 - x1 >= 3
        assert x3 - x2 >= 4
        assert x3 <= 18
        assert mutant.passes == 1
        assert not mutant.ingress_violation


def test_least_constrained_superset_of_most_constrained():
    pattern = listing1_pattern()
    mc = {m.stages for m in enumerate_mutants(pattern, MOST_CONSTRAINED, CONFIG)}
    lc = {m.stages for m in enumerate_mutants(pattern, LEAST_CONSTRAINED, CONFIG)}
    assert mc < lc  # strictly more flexibility


def test_least_constrained_reaches_all_stages():
    """Section 6.1: the cache's lc mutants can use memory in all stages."""
    pattern = listing1_pattern()
    reachable = set()
    for mutant in enumerate_mutants(pattern, LEAST_CONSTRAINED, CONFIG):
        reachable.update(mutant.physical_stages)
    assert reachable == set(range(1, 21))


def test_most_constrained_cannot_reach_stage_8():
    """For Listing 1 under mc, stage 8 is unreachable: the ingress
    constraint caps x2 at 7, and x3 >= x2 + 4 >= 9."""
    pattern = listing1_pattern()
    reachable = set()
    for mutant in enumerate_mutants(pattern, MOST_CONSTRAINED, CONFIG):
        reachable.update(mutant.physical_stages)
    assert 8 not in reachable
    assert 1 not in reachable
    # x1 in [2,4], x2 in [5,7], x3 in [9,18] (x3 is free to stretch to
    # UB=18 because padding after the RTS does not move the RTS).
    assert reachable == set(range(2, 8)) | set(range(9, 19))


def test_recirculating_mutants_count_passes():
    pattern = listing1_pattern()
    deep = [
        m
        for m in enumerate_mutants(pattern, LEAST_CONSTRAINED, CONFIG)
        if m.stages[-1] > 18
    ]
    assert deep
    assert all(m.passes == 2 for m in deep)
    assert all(m.recirculations >= 1 for m in deep)


def test_physical_stage_dedup_on_recirculation():
    """Accesses on different passes can share a physical stage."""
    pattern = AccessPattern(
        program_length=30,
        lower_bounds=(5, 25),
        min_distances=(1, 20),
        demands=(None, None),
        name="wrap",
    )
    mutants = list(enumerate_mutants(pattern, LEAST_CONSTRAINED, CONFIG))
    wrapped = [m for m in mutants if m.stages == (5, 25)]
    assert wrapped and wrapped[0].physical_stages == (5,)


def test_count_matches_enumeration():
    pattern = listing1_pattern()
    mutants = list(enumerate_mutants(pattern, MOST_CONSTRAINED, CONFIG))
    assert count_mutants(pattern, MOST_CONSTRAINED, CONFIG) == len(mutants)


def test_candidate_cap_respected():
    pattern = listing1_pattern()
    capped = dataclasses.replace(LEAST_CONSTRAINED, max_candidates=5)
    assert count_mutants(pattern, capped, CONFIG) == 5


def test_infeasible_pattern_yields_nothing():
    # An RTS pinned at position 15 (no access before it, so it never
    # shifts) can never reach the ingress window without recirculating:
    # the most-constrained policy admits no mutant at all.
    pattern = AccessPattern(
        program_length=20,
        lower_bounds=(17,),
        min_distances=(1,),
        demands=(None,),
        ingress_bound_position=15,
        name="egress-rts",
    )
    assert count_mutants(pattern, MOST_CONSTRAINED, CONFIG) == 0
    # The least-constrained policy tolerates it (one recirculation).
    assert count_mutants(pattern, LEAST_CONSTRAINED, CONFIG) > 0


def test_alias_constrains_to_same_physical_stage():
    """aliases[j] = i forces access j onto access i's physical stage."""
    pattern = AccessPattern(
        program_length=30,
        lower_bounds=(5, 25),
        min_distances=(1, 20),
        demands=(None, None),
        aliases=(-1, 0),
        name="aliased",
    )
    mutants = list(enumerate_mutants(pattern, MOST_CONSTRAINED, CONFIG))
    assert mutants
    for mutant in mutants:
        assert CONFIG.physical_stage(mutant.stages[0]) == CONFIG.physical_stage(
            mutant.stages[1]
        )
        assert len(mutant.physical_stages) == 1


def test_heavy_hitter_has_exactly_one_mc_mutant():
    """Section 6.1's census: the heavy hitter has a single mutant under
    the most-constrained policy -- its cross-pass alias pins everything."""
    from repro.apps import heavy_hitter_pattern

    pattern = heavy_hitter_pattern()
    assert count_mutants(pattern, MOST_CONSTRAINED, CONFIG) == 1
    assert count_mutants(pattern, LEAST_CONSTRAINED, CONFIG) > 1


def test_insertions_realize_mutants():
    """Applying insertions_for to the program lands accesses on target."""
    pattern = listing1_pattern()
    program = assemble(LISTING_1, name="cache-query")
    for mutant in enumerate_mutants(pattern, MOST_CONSTRAINED, CONFIG):
        padded = program.with_nops_before(insertions_for(pattern, mutant.stages))
        assert tuple(padded.memory_access_positions()) == mutant.stages
        assert len(padded) == pattern.mutant_length(mutant.stages)
        # The shifted RTS stays in the ingress window under mc.
        rts_position = padded.ingress_bound_positions()[0]
        assert rts_position <= CONFIG.ingress_stages


def test_insertions_reject_backward_mutants():
    pattern = listing1_pattern()
    with pytest.raises(ValueError):
        insertions_for(pattern, (3, 5, 9))  # access 2 would shift backwards


@st.composite
def random_patterns(draw):
    m = draw(st.integers(1, 4))
    positions = []
    cursor = 0
    for _ in range(m):
        cursor += draw(st.integers(1, 4))
        positions.append(cursor)
    trailing = draw(st.integers(0, 3))
    distances = [1] + [b - a for a, b in zip(positions, positions[1:])]
    return AccessPattern(
        program_length=positions[-1] + trailing,
        lower_bounds=tuple(positions),
        min_distances=tuple(distances),
        demands=tuple([None] * m),
        name="random",
    )


@settings(max_examples=40, deadline=None)
@given(random_patterns())
def test_enumeration_invariants_property(pattern):
    """Every emitted mutant satisfies LB/UB/B and is unique."""
    seen = set()
    ubs = pattern.upper_bounds(MOST_CONSTRAINED.horizon(CONFIG.num_stages))
    for mutant in enumerate_mutants(pattern, MOST_CONSTRAINED, CONFIG):
        assert mutant.stages not in seen
        seen.add(mutant.stages)
        previous = 0
        for x, lb, ub, dist in zip(
            mutant.stages, pattern.lower_bounds, ubs, pattern.min_distances
        ):
            assert lb <= x <= ub
            assert x - previous >= (dist if previous else 0)
            previous = x
