"""Device abstraction layer: protocol conformance and pure delegation.

The contracts under test:

- :class:`SimDevice` satisfies the runtime-checkable :class:`Device`
  protocol (and :class:`PipelineTables` the :class:`DeviceTables`
  subset), so controllers typed against the protocol accept them.
- Every ``SimDevice`` method is a one-hop delegation: table ops,
  register ops, digests, and injection observed through the device are
  byte-identical to poking the wrapped switch directly.
- :func:`as_device` coerces an ``ActiveSwitch`` (wrap), passes an
  existing ``Device`` through, refuses to relabel one, and rejects
  foreign objects.
- A controller built from a raw switch still exposes it via the
  ``.switch`` escape hatch, and never imports the simulator itself
  (the grep-clean guarantee, pinned here as an import-graph test).
"""

import pytest

from repro.controller import ActiveRmtController
from repro.device import (
    Device,
    DeviceError,
    DeviceTables,
    PipelineTables,
    SimDevice,
    as_device,
)
from repro.switchsim import ActiveSwitch, SwitchConfig
from repro.switchsim.tables import StageGrant


def _device(**config_kwargs):
    switch = ActiveSwitch(SwitchConfig(**config_kwargs))
    return SimDevice(switch, device_id="dut"), switch


# ----------------------------------------------------------------------
# Protocol conformance
# ----------------------------------------------------------------------


def test_sim_device_satisfies_device_protocol():
    device, _ = _device()
    assert isinstance(device, Device)
    assert isinstance(device, DeviceTables)


def test_pipeline_tables_satisfies_tables_subset_only():
    switch = ActiveSwitch(SwitchConfig())
    tables = PipelineTables(switch.pipeline)
    assert isinstance(tables, DeviceTables)
    assert not isinstance(tables, Device)


def test_device_info_mirrors_switch_config():
    device, switch = _device()
    info = device.info()
    config = switch.config
    assert info.device_id == "dut"
    assert info.kind == "sim"
    assert info.num_stages == config.num_stages
    assert info.blocks_per_stage == config.blocks_per_stage
    assert info.block_words == config.block_words
    assert info.total_blocks == config.num_stages * config.blocks_per_stage


def test_default_device_ids_are_unique():
    switch = ActiveSwitch(SwitchConfig())
    first = SimDevice(switch)
    second = SimDevice(switch)
    assert first.device_id != second.device_id
    assert first.device_id.startswith("sw")


# ----------------------------------------------------------------------
# as_device coercion
# ----------------------------------------------------------------------


def test_as_device_wraps_a_raw_switch():
    switch = ActiveSwitch(SwitchConfig())
    device = as_device(switch, device_id="edge0")
    assert isinstance(device, SimDevice)
    assert device.device_id == "edge0"
    assert device.underlying is switch


def test_as_device_passes_an_existing_device_through():
    device, _ = _device()
    assert as_device(device) is device
    assert as_device(device, device_id="dut") is device


def test_as_device_refuses_to_relabel():
    device, _ = _device()
    with pytest.raises(DeviceError, match="already identifies"):
        as_device(device, device_id="other")


def test_as_device_rejects_foreign_objects():
    with pytest.raises(DeviceError, match="cannot adapt"):
        as_device(object())


# ----------------------------------------------------------------------
# Delegation: tables
# ----------------------------------------------------------------------


def test_table_ops_delegate_to_the_wrapped_pipeline():
    device, switch = _device()
    grant = StageGrant(fid=7, start=0, end=32, mask=0x1F, offset=0)
    device.install_grant(2, grant)
    assert switch.pipeline.stage(2).table.grant_for(7) == grant
    assert device.grant_for(2, 7) == grant

    device.install_translation(2, 7, mask=0x1F, offset=0)
    assert device.translation_for(2, 7) == (0x1F, 0)
    assert switch.pipeline.stage(2).table.translation_for(7) == (0x1F, 0)

    assert device.remove_translation(2, 7) is True
    assert device.remove_translation(2, 7) is False
    assert device.remove_grant(2, 7) == grant
    assert device.grant_for(2, 7) is None


def test_activation_delegates():
    device, switch = _device()
    assert device.is_active(9)
    device.deactivate_fid(9)
    assert not switch.pipeline.is_active(9)
    device.reactivate_fid(9)
    assert device.is_active(9)


# ----------------------------------------------------------------------
# Delegation: register memory
# ----------------------------------------------------------------------


def test_register_roundtrip_through_the_device():
    device, switch = _device()
    device.write_registers(1, 4, [10, 20, 30])
    assert device.read_registers(1, 4, 7) == [10, 20, 30]
    assert switch.pipeline.stage(1).registers.snapshot(4, 7) == [10, 20, 30]

    device.scrub_registers(1, 4, 6)
    assert device.read_registers(1, 4, 7) == [0, 0, 30]


def test_stats_and_digests_delegate():
    device, switch = _device()
    assert device.stats() == switch.stats()
    assert device.digests_pending == switch.digests_pending
    assert device.poll_digests() == []


# ----------------------------------------------------------------------
# Controller integration
# ----------------------------------------------------------------------


def test_controller_accepts_raw_switch_and_exposes_escape_hatch():
    switch = ActiveSwitch(SwitchConfig())
    controller = ActiveRmtController(switch)
    assert isinstance(controller.device, Device)
    assert controller.switch is switch
    assert controller.device.underlying is switch


def test_controller_accepts_a_device_directly():
    device, switch = _device()
    controller = ActiveRmtController(device)
    assert controller.device is device
    assert controller.switch is switch


def test_controller_package_does_not_import_the_simulator():
    """The refactor's grep-clean guarantee, as an import-graph check."""
    import sys

    controller_modules = [
        name
        for name in sys.modules
        if name.startswith("repro.controller")
    ]
    assert controller_modules, "controller modules should be loaded by now"
    for name in controller_modules:
        module = sys.modules[name]
        source = getattr(module, "__file__", None)
        if source is None:
            continue
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
        assert "from repro.switchsim.switch import" not in text, (
            f"{name} imports the simulator switch directly"
        )
        assert "import repro.switchsim.switch" not in text, (
            f"{name} imports the simulator switch directly"
        )
