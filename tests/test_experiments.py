"""Smoke + shape tests for the experiment regenerators (quick sizes)."""

import pytest

from repro.experiments import (
    fig5_alloc_time,
    fig6_utilization,
    fig7_online,
    fig8a_provisioning,
    fig8b_latency,
    fig9_case_study,
    fig11_schemes,
    fig12_granularity,
    tables,
)


def test_fig5_pure_shapes():
    results = fig5_alloc_time.run_pure(arrivals=80)
    cache_mc = results["cache"]["mc"]
    hh_mc = results["heavy-hitter"]["mc"]
    # Elastic caches keep being admitted; inelastic HH fails early.
    assert cache_mc.placed == 80
    assert 0 < hh_mc.first_failure_epoch < 80
    # The lc policy places at least as many HH instances as mc.
    assert results["heavy-hitter"]["lc"].placed >= hh_mc.placed
    # Failed epochs are brief: mean failed-epoch time is below the mean
    # successful-epoch time (assignment is skipped entirely).
    failed = [
        t for t, ok in zip(hh_mc.alloc_seconds, hh_mc.successes) if not ok
    ]
    succeeded = [
        t for t, ok in zip(hh_mc.alloc_seconds, hh_mc.successes) if ok
    ]
    assert failed and succeeded


def test_fig5_mixed_smoothing():
    results = fig5_alloc_time.run_mixed(arrivals=40, trials=2)
    assert set(results) == {"mc", "lc"}
    smoothed = results["mc"].smoothed_mean()
    assert len(smoothed) == 40
    assert all(v >= 0 for v in smoothed)


def test_fig6_shapes():
    results = fig6_utilization.run(arrivals=60)
    cache = results["cache"]
    # Cache saturates within ~10 arrivals (paper: 8-9) and lc reaches
    # strictly higher utilization than mc (all 20 stages reachable).
    assert cache["mc"].arrivals_to_saturation() <= 15
    assert cache["lc"].max_utilization > cache["mc"].max_utilization
    assert cache["lc"].max_utilization == pytest.approx(1.0)
    # The load balancer's tiny inelastic demand climbs very slowly.
    lb = results["load-balancer"]["mc"]
    assert lb.max_utilization < 0.2


def test_fig7_shapes():
    results = fig7_online.run(epochs=120, trials=2)
    for result in results.values():
        assert 0.4 < result.final_utilization() <= 1.0
        assert result.final_fairness() > 0.8
        residents = result.mean_residents()
        assert residents[-1] > residents[0]
    # lc places at least as many instances as mc.
    assert (
        results["lc"].mean_residents()[-1]
        >= results["mc"].mean_residents()[-1] - 1
    )


def test_fig8a_shapes():
    result = fig8a_provisioning.run(epochs=80)
    assert 0.2 < result.plateau_seconds() < 5.0
    assert result.table_dominance() > 0.8


def test_fig8b_shapes():
    result = fig8b_latency.run()
    assert result.is_monotone()
    assert all(rtt > result.baseline_rtt_us for rtt in result.rtt_us.values())
    assert result.passes[30] == 2  # 30 instructions recirculate


def test_fig9a_case_study_quick():
    result = fig9_case_study.run_case_study(
        monitor_duration_s=0.6,
        total_duration_s=3.0,
        request_interval_s=1e-3,
        num_keys=2000,
    )
    assert result.phase_hit_rate(0.0, result.switch_started_at) == 0.0
    assert result.extracted_keys > 50
    assert result.cache_allocated_at is not None
    stable = result.phase_hit_rate(2.5, 3.0)
    assert stable > 0.5


def test_fig9b_multi_tenant_quick():
    result = fig9_case_study.run_multi_tenant(
        stagger_s=1.5, settle_s=2.5, request_interval_s=1e-3, num_keys=2000
    )
    fids = sorted(result.per_client_events)
    rates = {fid: result.stable_hit_rate(fid) for fid in fids}
    assert all(rate > 0.5 for rate in rates.values()), rates
    # The sharing pair (first and fourth tenants) land close together
    # and below the exclusive tenants.
    sharing = (rates[fids[0]] + rates[fids[-1]]) / 2
    exclusive = (rates[fids[1]] + rates[fids[2]]) / 2
    assert sharing < exclusive
    assert abs(rates[fids[0]] - rates[fids[-1]]) < 0.15
    # Figure 10: the incumbent's disruption is sub-second.
    disruption = result.disruption_window(fids[0], result.arrival_times[fids[-1]])
    assert 0.01 < disruption < 1.0


def test_fig11_shapes():
    results = fig11_schemes.run(epochs=40, trials=2)
    assert set(results) == {"wf", "ff", "bf", "realloc"}
    wf = results["wf"]
    bf = results["bf"]
    # Worst-fit's failure rate does not exceed best-fit's (paper:
    # dramatically lower).
    assert wf.failure_rate <= bf.failure_rate + 0.02
    for result in results.values():
        assert 0 <= result.failure_rate < 1
        assert 0 < result.utilization.median <= 1


def test_fig12_shapes():
    results = fig12_granularity.run(arrivals=30)
    for workload, cells in results.items():
        for cell in cells.values():
            assert cell.total_alloc_seconds >= 0
            assert cell.placed + cell.failed == 30
    # Same byte demand at every granularity: the LB places everywhere.
    lb = results["load-balancer"]
    assert all(cell.failed == 0 for cell in lb.values())


def test_mutant_census_matches_paper_shape():
    census = tables.run_mutant_census()
    counts = census.counts
    # Paper: 34/1/5 (mc) and 915/587/1149 (lc); exact values depend on
    # the deployed programs, but the structure must hold.
    assert counts["heavy-hitter"]["mc"] == 1
    assert counts["cache"]["mc"] > counts["load-balancer"]["mc"]
    for app in counts:
        assert counts[app]["lc"] > counts[app]["mc"]


def test_overheads_match_paper():
    result = tables.run_overheads()
    assert result.monolith_max_instances == 22
    assert result.monolith_compile_seconds == pytest.approx(28.79, abs=0.1)
    assert result.netvrm_usable_fraction < 0.5
    assert result.activermt_usable_fraction == pytest.approx(0.83)


def test_cli_runs_quick_experiment(capsys):
    from repro.experiments.cli import main

    assert main(["fig8b", "--quick"]) == 0
    output = capsys.readouterr().out
    assert "Figure 8b" in output
