"""Sharded fabric: placement, routing, parity, and linearizability.

The contracts under test:

- **Placement determinism**: hash placement is a pure function of
  (fid, seed, shard count) -- arrival order and shard load never move
  a fid (Hypothesis property).
- **Per-shard linearizability**: after concurrent churn through the
  fabric, serially replaying each shard's own ``commit_log`` onto a
  fresh controller reproduces that shard's ``pools_fingerprint``
  (Hypothesis property).
- **Single-shard parity**: a 1-shard fabric driven serially is
  byte-identical to the bare controller + admission-service stack --
  same fingerprint, same commit log, same admitted/rejected counts.
- **Sticky routing**: withdrawals follow the fid's admission shard;
  unplaced withdrawals are a :class:`FabricError`; dry-run probes do
  not pin a route.
- **Policies**: least-loaded picks the emptiest shard (ties to the
  lower index), first-fit takes the first feasible shard and falls
  back to least-loaded when nothing fits.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.controller import (
    ActiveRmtController,
    AdmissionService,
    ProvisioningRequest,
)
from repro.controller.service import pools_fingerprint
from repro.fabric import (
    Fabric,
    FabricError,
    FirstFitPlacement,
    HashPlacement,
    LeastLoadedPlacement,
    PlacementError,
    make_policy,
    replay_shard,
)
from repro.packets import ActivePacket, MacAddress
from repro.switchsim import ActiveSwitch, SwitchConfig

from tests.test_core_constraints import listing1_pattern


def _admission(fid: int) -> ProvisioningRequest:
    return ProvisioningRequest.admission(fid=fid, pattern=listing1_pattern())


# ----------------------------------------------------------------------
# Placement policies (pure, via stub shards)
# ----------------------------------------------------------------------


class StubShard:
    def __init__(self, device_id, blocks, fits=True):
        self.device_id = device_id
        self._blocks = blocks
        self._fits = fits
        self.probes = 0

    def used_blocks(self):
        return self._blocks

    def probe(self, fid, pattern):
        self.probes += 1
        return self._fits


@settings(max_examples=60, deadline=None)
@given(
    fid=st.integers(min_value=0, max_value=2**31),
    seed=st.integers(min_value=0, max_value=2**16),
    count=st.integers(min_value=1, max_value=16),
)
def test_hash_placement_is_a_pure_function_of_fid_seed_count(fid, seed, count):
    shards = [StubShard(f"sw{i}", blocks=i * 7) for i in range(count)]
    policy = HashPlacement(seed=seed)
    first = policy.place(fid, None, shards)
    # Same inputs, fresh policy instance, loads perturbed: same answer.
    perturbed = [StubShard(f"sw{i}", blocks=100 - i) for i in range(count)]
    assert HashPlacement(seed=seed).place(fid, None, perturbed) == first
    assert 0 <= first < count


def test_least_loaded_picks_emptiest_with_index_ties():
    shards = [StubShard("a", 5), StubShard("b", 2), StubShard("c", 2)]
    assert LeastLoadedPlacement().place(1, None, shards) == 1


def test_first_fit_takes_first_feasible_shard():
    shards = [
        StubShard("a", 0, fits=False),
        StubShard("b", 9, fits=True),
        StubShard("c", 1, fits=True),
    ]
    assert FirstFitPlacement().place(1, None, shards) == 1
    assert shards[2].probes == 0  # stopped at the first fit


def test_first_fit_falls_back_to_least_loaded_when_nothing_fits():
    shards = [StubShard("a", 5, fits=False), StubShard("b", 3, fits=False)]
    assert FirstFitPlacement().place(1, None, shards) == 1


def test_make_policy_resolves_names_and_passes_instances_through():
    assert make_policy("hash", seed=3).seed == 3
    assert make_policy("least-loaded").name == "least-loaded"
    assert make_policy("first-fit").name == "first-fit"
    policy = LeastLoadedPlacement()
    assert make_policy(policy) is policy
    with pytest.raises(PlacementError, match="unknown placement"):
        make_policy("round-robin")


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------


def test_routes_are_sticky_and_withdrawals_follow_them():
    with Fabric.build(4, workers=0, seed=11) as fabric:
        report = fabric.submit_and_wait(_admission(42))
        assert report.success
        home = fabric.route_of(42)
        assert home is not None
        fabric.submit_and_wait(ProvisioningRequest.withdrawal(fid=42))
        # Withdrawal stays on the admission shard; the route survives.
        assert fabric.route_of(42) == home
        assert fabric.shards[home].commit_log == [
            ("admit", 42),
            ("withdraw", 42),
        ]


def test_unplaced_withdrawal_is_a_fabric_error():
    with Fabric.build(2, workers=0) as fabric:
        with pytest.raises(FabricError, match="not placed"):
            fabric.submit(ProvisioningRequest.withdrawal(fid=99))


def test_dry_run_places_but_does_not_pin():
    with Fabric.build(2, workers=0) as fabric:
        probe = ProvisioningRequest.admission(
            fid=7, pattern=listing1_pattern(), dry_run=True
        )
        report = fabric.submit_and_wait(probe)
        assert report.success
        assert fabric.route_of(7) is None  # what-ifs don't decide homes
        fabric.submit_and_wait(_admission(7))
        assert fabric.route_of(7) is not None


def test_place_packet_steers_alloc_requests_to_the_placed_shard():
    with Fabric.build(4, workers=0, seed=5) as fabric:
        client = MacAddress.from_host_id(1)
        packet = ActivePacket.alloc_request(
            src=client,
            dst=MacAddress.from_host_id(2),
            fid=13,
            request=listing1_pattern().to_request(),
        )
        index = fabric.place_packet(packet)
        assert fabric.route_of(13) == index  # request placement pins
        assert fabric.place_packet(packet) == index  # and is sticky


def test_build_rejects_empty_fleet():
    with pytest.raises(FabricError):
        Fabric.build(0)


# ----------------------------------------------------------------------
# Single-shard parity: the fabric adds routing, not behavior
# ----------------------------------------------------------------------


def test_single_shard_fabric_matches_bare_stack_exactly():
    fids = [1, 2, 3, 4, 5, 6]
    withdrawn = {2, 5}

    bare_controller = ActiveRmtController(ActiveSwitch(SwitchConfig()))
    bare = AdmissionService(bare_controller, workers=0, seed=0)
    bare_reports = {}
    for fid in fids:
        bare_reports[fid] = bare.submit(_admission(fid)).result()
        if fid in withdrawn and bare_reports[fid].success:
            bare.submit(ProvisioningRequest.withdrawal(fid=fid)).result()

    with Fabric.build(1, workers=0, seed=0) as fabric:
        fabric_reports = {}
        for fid in fids:
            fabric_reports[fid] = fabric.submit_and_wait(_admission(fid))
            if fid in withdrawn and fabric_reports[fid].success:
                fabric.submit_and_wait(ProvisioningRequest.withdrawal(fid=fid))

        assert {f: r.status for f, r in fabric_reports.items()} == {
            f: r.status for f, r in bare_reports.items()
        }
        assert fabric.shards[0].commit_log == bare.commit_log
        assert fabric.shards[0].fingerprint() == pools_fingerprint(
            bare_controller.allocator
        )


# ----------------------------------------------------------------------
# Per-shard linearizability under concurrent churn (Hypothesis)
# ----------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(
    count=st.integers(min_value=3, max_value=12),
    shard_count=st.sampled_from([1, 2, 3]),
    workers=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_each_shard_commit_log_replays_to_its_fingerprint(
    count, shard_count, workers, seed
):
    pattern = listing1_pattern()
    patterns = {fid: pattern for fid in range(count)}
    with Fabric.build(shard_count, workers=workers, seed=seed) as fabric:
        tickets = [fabric.submit(_admission(fid)) for fid in range(count)]
        reports = {fid: t.result() for fid, t in zip(range(count), tickets)}
        # Withdraw every other successfully admitted fid, concurrently.
        withdrawals = [
            fabric.submit(ProvisioningRequest.withdrawal(fid=fid))
            for fid in range(0, count, 2)
            if reports[fid].success
        ]
        for ticket in withdrawals:
            ticket.result()
        fabric.drain()
        for shard in fabric.shards:
            live, replayed = replay_shard(shard, patterns)
            assert live == replayed, (
                f"{shard.device_id}: commit log does not replay to the "
                f"live pools fingerprint"
            )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_fabric_routes_deterministic_under_fixed_seed(seed):
    """Two fabrics, same seed and fid set, different submission order:
    identical fid -> shard maps (hash placement is load-oblivious)."""
    fids = [3, 14, 15, 92, 65, 35]
    with Fabric.build(3, workers=0, seed=seed) as first:
        for fid in fids:
            first.submit_and_wait(_admission(fid))
        forward = {fid: first.route_of(fid) for fid in fids}
    with Fabric.build(3, workers=0, seed=seed) as second:
        for fid in reversed(fids):
            second.submit_and_wait(_admission(fid))
        backward = {fid: second.route_of(fid) for fid in fids}
    assert forward == backward


# ----------------------------------------------------------------------
# Fleet observability
# ----------------------------------------------------------------------


def test_fingerprint_and_stats_cover_every_shard():
    with Fabric.build(3, workers=0) as fabric:
        for fid in range(5):
            fabric.submit_and_wait(_admission(fid))
        prints = fabric.fingerprint()
        assert set(prints) == {"sw0", "sw1", "sw2"}
        rows = fabric.stats()
        assert [row["device"] for row in rows] == ["sw0", "sw1", "sw2"]
        assert sum(row["routed_fids"] for row in rows) == 5
        assert sum(len(log) for log in fabric.commit_logs().values()) == 5
