"""Fault injection and crash recovery: plans, retries, rollback, failover.

The contracts under test:

- **Plan determinism**: a :class:`FaultPlan` is a pure function of
  (seed, op index) -- two plans with the same seed emit the same
  decision sequence.
- **FaultyDevice semantics**: TRANSIENT raises before applying,
  PARTIAL applies then raises (idempotent retry heals it), DELAY
  sleeps through the injected clock, death makes every operation raise
  :class:`PermanentDeviceError` while identity stays readable.
- **Retry loop**: heals transients within budget; exhaustion (attempts
  or fake-clock timeout) raises :class:`RetryExhaustedError` chained
  to the last fault; nested exhaustion is not re-retried; permanent
  faults pass through unretried.
- **Rollback**: exhausted retries and mid-journal timeouts resolve as
  ``ROLLED_BACK`` reports -- never exceptions -- leaving allocator and
  switch byte-identical; a ``DeviceError`` mid-batch undoes the whole
  group exactly like TCAM exhaustion (regression).
- **Recovery**: replaying the commit log onto a fresh device
  reproduces the live pools fingerprint -- deterministically and as a
  Hypothesis property under random fault schedules.
- **Failover**: replace-mode rebuilds a dead shard from its commit log
  with a fingerprint-equality proof; redistribute-mode re-admits
  residents on survivors and sheds gracefully when capacity is gone;
  routing to a dead shard is a :class:`FabricError`.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.controller import (
    ActiveRmtController,
    AdmissionService,
    ProvisioningRequest,
    ProvisioningStatus,
)
from repro.controller.service import pools_fingerprint
from repro.device import (
    Device,
    PermanentDeviceError,
    SimDevice,
    TransientDeviceError,
    as_device,
)
from repro.fabric import Fabric, FabricError, replay_shard
from repro.faults import (
    FaultDecision,
    FaultKind,
    FaultPlan,
    FaultyDevice,
    RetryExhaustedError,
    RetryPolicy,
    call_with_retries,
)
from repro.switchsim import ActiveSwitch, SwitchConfig
from repro.telemetry import MetricsRegistry

from tests.test_core_constraints import listing1_pattern
from tests.test_transactions import allocator_fingerprint, switch_fingerprint

import random


def _sim(device_id: str = "sw0", **config_kwargs) -> SimDevice:
    return SimDevice(
        ActiveSwitch(SwitchConfig(**config_kwargs)), device_id=device_id
    )


def _admission(fid: int) -> ProvisioningRequest:
    return ProvisioningRequest.admission(fid=fid, pattern=listing1_pattern())


#: Retry policy with sub-microsecond sleeps: tests never really wait.
FAST_RETRY = RetryPolicy(max_attempts=5, base_s=1e-9, cap_s=1e-8)


class ScriptedPlan(FaultPlan):
    """Fault exactly where a predicate says; clean everywhere else.

    ``predicate(op, index)`` returning a :class:`FaultKind` injects
    that fault; returning None lets the op through.  Keeps targeted
    tests (fault the Nth install, fault only translations) independent
    of the Bernoulli schedule.
    """

    def __init__(self, predicate):
        super().__init__()
        self._predicate = predicate

    def decide(self, op):
        index = self.op_index
        self.op_index += 1
        kind = self._predicate(op, index)
        if kind is None:
            return None
        self.injected += 1
        return FaultDecision(kind, index, op)


class FakeClock:
    """Deterministic clock + sleep pair; sleeping advances time."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------


def test_fault_plan_is_deterministic():
    kwargs = dict(seed=42, transient_rate=0.3, partial_rate=0.2, delay_rate=0.1)
    a, b = FaultPlan(**kwargs), FaultPlan(**kwargs)
    decisions_a = [a.decide("op") for _ in range(200)]
    decisions_b = [b.decide("op") for _ in range(200)]
    assert decisions_a == decisions_b
    assert any(d is not None for d in decisions_a)


def test_fault_plan_validates_rates():
    with pytest.raises(ValueError):
        FaultPlan(transient_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(digest_drop_rate=-0.1)


def test_fault_plan_max_transients_caps_injections():
    plan = FaultPlan(seed=1, transient_rate=1.0, max_transients=3)
    faults = [plan.decide("op") for _ in range(10)]
    assert sum(1 for d in faults if d is not None) == 3
    assert all(d is None for d in faults[3:])


def test_fault_plan_kill_at_op_is_permanent_from_there_on():
    plan = FaultPlan(kill_at_op=2)
    assert plan.decide("a") is None
    assert plan.decide("b") is None
    for _ in range(3):
        decision = plan.decide("c")
        assert decision is not None and decision.kind is FaultKind.PERMANENT


# ----------------------------------------------------------------------
# FaultyDevice
# ----------------------------------------------------------------------


def test_faulty_device_satisfies_device_protocol():
    device = FaultyDevice(_sim(), FaultPlan())
    assert isinstance(device, Device)
    assert as_device(device) is device


def test_transient_fault_raises_before_applying():
    device = FaultyDevice(
        _sim(),
        ScriptedPlan(lambda op, i: FaultKind.TRANSIENT if i == 0 else None),
        telemetry=MetricsRegistry(),
    )
    controller = ActiveRmtController(device)
    grant_calls_before = device.inner.stage_fids(0)
    with pytest.raises(TransientDeviceError):
        device.install_grant(0, _probe_grant(controller))
    assert device.inner.stage_fids(0) == grant_calls_before
    assert device.injected == {"transient": 1}


def test_partial_fault_applies_then_raises():
    device = FaultyDevice(
        _sim(),
        ScriptedPlan(lambda op, i: FaultKind.PARTIAL if i == 0 else None),
    )
    controller = ActiveRmtController(device)
    grant = _probe_grant(controller)
    with pytest.raises(TransientDeviceError):
        device.install_grant(0, grant)
    # The op landed despite the error: that is the ambiguity retries heal.
    assert device.inner.grant_for(0, grant.fid) == grant
    device.install_grant(0, grant)  # idempotent retry succeeds


def test_delay_fault_sleeps_through_injected_clock():
    sleeps = []
    device = FaultyDevice(
        _sim(),
        ScriptedPlan(lambda op, i: FaultKind.DELAY if i == 0 else None),
        sleep=sleeps.append,
    )
    device.plan.delay_s = 0.25
    controller = ActiveRmtController(device)
    device.install_grant(0, _probe_grant(controller))
    assert sleeps == [0.25]


def test_dead_device_raises_permanently_but_identity_stays_readable():
    device = FaultyDevice(_sim("sw7"), FaultPlan())
    device.kill()
    with pytest.raises(PermanentDeviceError):
        device.stage_fids(0)
    with pytest.raises(PermanentDeviceError):
        device.scrub_registers(0, 0, 1)
    # Failover bookkeeping reads identity off the dead chassis.
    assert device.device_id == "sw7"
    assert device.config.num_stages == device.num_stages
    assert device.dead


def test_digest_drops_are_counted():
    class _DigestStub:
        device_id = "stub"

        def poll_digests(self, limit=None):
            return ["d0", "d1", "d2", "d3"]

    plan = FaultPlan(seed=0, digest_drop_rate=1.0)
    device = FaultyDevice(_DigestStub(), plan)
    assert device.poll_digests() == []
    assert device.digests_dropped == 4
    assert device.injected == {"drop_digest": 4}


def test_stats_merge_fault_counts():
    device = FaultyDevice(_sim(), FaultPlan())
    stats = device.stats()
    assert stats["faults_injected"] == {}
    assert stats["digests_dropped"] == 0


def _probe_grant(controller):
    """One real StageGrant, obtained by planning a dry-run admission."""
    plan = controller.what_if(fid=999, pattern=listing1_pattern())
    assert plan.feasible
    stage, block_range = next(iter(sorted(plan.regions.items())))
    words = block_range.to_words(controller.device.config.block_words)
    from repro.switchsim.tables import StageGrant

    return StageGrant(fid=999, start=words.start, end=words.end)


# ----------------------------------------------------------------------
# call_with_retries
# ----------------------------------------------------------------------


def test_retries_heal_within_budget():
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise TransientDeviceError("flaky")
        return "ok"

    clock = FakeClock()
    result = call_with_retries(
        flaky, FAST_RETRY, random.Random(0), clock=clock, sleep=clock.sleep
    )
    assert result == "ok"
    assert len(attempts) == 3
    assert len(clock.sleeps) == 2


def test_exhausted_attempts_raise_chained_retry_exhausted():
    def always_fails():
        raise TransientDeviceError("still down")

    clock = FakeClock()
    with pytest.raises(RetryExhaustedError) as exc:
        call_with_retries(
            always_fails,
            RetryPolicy(max_attempts=3, base_s=1e-9),
            random.Random(0),
            clock=clock,
            sleep=clock.sleep,
        )
    assert "attempts" in str(exc.value)
    assert isinstance(exc.value.__cause__, TransientDeviceError)
    assert len(clock.sleeps) == 2  # 3 attempts, 2 backoffs


def test_timeout_exhausts_before_attempt_budget():
    clock = FakeClock()

    def always_fails():
        clock.now += 1.0  # each attempt burns simulated wall-clock
        raise TransientDeviceError("still down")

    with pytest.raises(RetryExhaustedError) as exc:
        call_with_retries(
            always_fails,
            RetryPolicy(max_attempts=100, base_s=1e-9, timeout_s=2.5),
            random.Random(0),
            clock=clock,
            sleep=clock.sleep,
        )
    assert "timeout" in str(exc.value)
    assert clock.now < 10  # nowhere near 100 attempts


def test_nested_exhaustion_is_not_multiplied():
    inner_calls = []

    def inner_exhausts():
        inner_calls.append(1)
        raise RetryExhaustedError("inner budget spent")

    clock = FakeClock()
    with pytest.raises(RetryExhaustedError):
        call_with_retries(
            inner_exhausts,
            RetryPolicy(max_attempts=5, base_s=1e-9),
            random.Random(0),
            clock=clock,
            sleep=clock.sleep,
        )
    assert len(inner_calls) == 1  # re-raised immediately, not re-retried


def test_permanent_faults_pass_through_unretried():
    calls = []

    def dies():
        calls.append(1)
        raise PermanentDeviceError("dead")

    with pytest.raises(PermanentDeviceError):
        call_with_retries(dies, FAST_RETRY, random.Random(0))
    assert len(calls) == 1


def test_retry_policy_delay_is_capped_and_jittered():
    policy = RetryPolicy(
        max_attempts=10, base_s=1.0, multiplier=10.0, cap_s=4.0, jitter=0.5
    )
    rng = random.Random(0)
    for attempt in range(1, 10):
        delay = policy.delay(attempt, rng)
        assert 0.0 < delay <= 4.0
        assert delay >= 4.0 * 0.5 or attempt == 1  # jitter scales in [0.5, 1]


# ----------------------------------------------------------------------
# Controller integration: retries, rollback, batches
# ----------------------------------------------------------------------


def test_engine_retries_heal_admission():
    device = FaultyDevice(
        _sim(), FaultPlan(seed=3, transient_rate=0.4, max_transients=4)
    )
    controller = ActiveRmtController(device, retry=FAST_RETRY)
    report = controller.admit(fid=1, pattern=listing1_pattern())
    assert report.success
    assert controller.updater.retries_healed >= 1
    assert controller.updater.retries_attempted >= 1


def test_exhausted_retries_resolve_as_rolled_back_report():
    """Retry exhaustion is an admission outcome, not an exception."""
    device = FaultyDevice(
        _sim(),
        ScriptedPlan(
            lambda op, i: FaultKind.TRANSIENT if op == "install_grant" else None
        ),
    )
    controller = ActiveRmtController(device, retry=FAST_RETRY)
    before_alloc = allocator_fingerprint(controller.allocator)
    before_switch = switch_fingerprint(controller)
    report = controller.admit(fid=1, pattern=listing1_pattern())
    assert not report.success
    assert report.rolled_back
    assert report.status is ProvisioningStatus.ROLLED_BACK
    assert report.fault == "transient"
    assert not controller.device_failed
    assert allocator_fingerprint(controller.allocator) == before_alloc
    assert switch_fingerprint(controller) == before_switch


def test_timeout_mid_journal_rolls_back_byte_identically():
    """A timeout after some installs landed undoes them exactly."""
    device = FaultyDevice(
        _sim(),
        ScriptedPlan(
            lambda op, i: (
                FaultKind.TRANSIENT if op == "install_translation" else None
            )
        ),
    )
    clock = FakeClock()
    controller = ActiveRmtController(
        device,
        retry=RetryPolicy(max_attempts=10_000, base_s=1.0, timeout_s=3.0),
    )
    controller.updater._clock = clock
    controller.updater._sleep = clock.sleep
    before_alloc = allocator_fingerprint(controller.allocator)
    before_switch = switch_fingerprint(controller)
    report = controller.admit(fid=1, pattern=listing1_pattern())
    assert not report.success
    assert report.status is ProvisioningStatus.ROLLED_BACK
    assert report.fault == "transient"
    # Grants were journaled before the translation timed out; the
    # rollback removed them byte-identically.
    assert allocator_fingerprint(controller.allocator) == before_alloc
    assert switch_fingerprint(controller) == before_switch
    assert clock.now >= 3.0  # the fake clock actually drove the timeout


def test_device_error_mid_batch_rolls_back_whole_group():
    """Regression: a DeviceError mid-batch must undo every member,
    exactly like TCAM exhaustion does."""
    grants = {"count": 0}

    def fault_fourth_install(op, index):
        if op != "install_grant":
            return None
        grants["count"] += 1
        # Listing 1 takes three stages: the fourth install is the
        # second batch member's first grant.
        return FaultKind.TRANSIENT if grants["count"] == 4 else None

    device = FaultyDevice(_sim(), ScriptedPlan(fault_fourth_install))
    controller = ActiveRmtController(device)  # no retry: the fault escapes
    service = AdmissionService(controller, workers=0)
    before_alloc = allocator_fingerprint(controller.allocator)
    before_switch = switch_fingerprint(controller)
    batch = service.submit_many([_admission(fid) for fid in (1, 2, 3)])
    report = batch.result(timeout=0)
    assert report.status is ProvisioningStatus.ROLLED_BACK
    assert not report.success
    assert all(r.rolled_back for r in report.reports)
    assert all(r.fault == "transient" for r in report.reports)
    assert allocator_fingerprint(controller.allocator) == before_alloc
    assert switch_fingerprint(controller) == before_switch
    assert all(("admit", fid) not in service.commit_log for fid in (1, 2, 3))


def test_service_replans_after_transient_rollback():
    faulted = {"done": False}

    def fault_first_install_once(op, index):
        if op == "install_grant" and not faulted["done"]:
            faulted["done"] = True
            return FaultKind.TRANSIENT
        return None

    telemetry = MetricsRegistry()
    device = FaultyDevice(_sim(), ScriptedPlan(fault_first_install_once))
    controller = ActiveRmtController(device, telemetry=telemetry)
    service = AdmissionService(controller, workers=0, telemetry=telemetry)
    report = service.submit(_admission(1)).result(timeout=0)
    # The first attempt rolled back on the injected fault; the service
    # re-planned and the second attempt committed.
    assert report.status is ProvisioningStatus.ADMITTED
    assert service.commit_log == [("admit", 1)]
    counters = telemetry.snapshot()["counters"]
    assert counters.get("admission_fault_retries_total") == 1.0


def test_permanent_fault_latches_device_failed():
    device = FaultyDevice(
        _sim(),
        ScriptedPlan(
            lambda op, i: FaultKind.PERMANENT if op == "install_grant" else None
        ),
    )
    controller = ActiveRmtController(device, retry=FAST_RETRY)
    report = controller.admit(fid=1, pattern=listing1_pattern())
    assert not report.success
    assert report.fault == "device"
    assert controller.device_failed


# ----------------------------------------------------------------------
# Recovery from the commit log
# ----------------------------------------------------------------------


def test_recover_rebuilds_pools_from_commit_log():
    pattern = listing1_pattern()
    device = FaultyDevice(
        _sim(), FaultPlan(seed=11, transient_rate=0.3, max_transients=4)
    )
    controller = ActiveRmtController(device, retry=FAST_RETRY)
    service = AdmissionService(controller, workers=0)
    for fid in (1, 2, 3, 4):
        assert service.submit(_admission(fid)).result(timeout=0).success
    service.submit(
        ProvisioningRequest.withdrawal(fid=2)
    ).result(timeout=0)

    recovered = ActiveRmtController.recover(
        _sim("sw0-replacement"),
        service.commit_log,
        {fid: pattern for fid in (1, 2, 3, 4)},
    )
    assert pools_fingerprint(recovered.allocator) == pools_fingerprint(
        controller.allocator
    )
    assert set(recovered.allocator.resident_fids()) == {1, 3, 4}
    assert not recovered.audit().errors


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    transient_rate=st.floats(min_value=0.0, max_value=0.8),
    partial_rate=st.floats(min_value=0.0, max_value=0.2),
)
@settings(max_examples=15, deadline=None)
def test_recovery_matches_live_under_random_fault_schedules(
    seed, transient_rate, partial_rate
):
    """Commit-log recovery equals the live fingerprint no matter what
    transient/partial schedule the device threw at the admissions.

    ``max_transients`` stays below the retry budget so no operation can
    exhaust: every admission either commits (and is logged) or was
    never attempted -- the linearization witness recovery relies on.
    """
    pattern = listing1_pattern()
    plan = FaultPlan(
        seed=seed,
        transient_rate=transient_rate,
        partial_rate=partial_rate,
        max_transients=FAST_RETRY.max_attempts - 1,
    )
    controller = ActiveRmtController(
        FaultyDevice(_sim(), plan), retry=FAST_RETRY
    )
    service = AdmissionService(controller, workers=0)
    withdraw_rng = random.Random(seed)
    admitted = []
    for fid in range(1, 7):
        if service.submit(_admission(fid)).result(timeout=0).success:
            admitted.append(fid)
        if admitted and withdraw_rng.random() < 0.3:
            victim = admitted.pop(withdraw_rng.randrange(len(admitted)))
            service.submit(
                ProvisioningRequest.withdrawal(fid=victim)
            ).result(timeout=0)

    recovered = ActiveRmtController.recover(
        _sim("fresh"),
        service.commit_log,
        {fid: pattern for fid in range(1, 7)},
    )
    assert pools_fingerprint(recovered.allocator) == pools_fingerprint(
        controller.allocator
    )


# ----------------------------------------------------------------------
# Fabric failover
# ----------------------------------------------------------------------


def _faulty_fabric(num_shards=3, **config_kwargs):
    devices = []

    def factory(index):
        device = FaultyDevice(
            _sim(f"sw{index}", **config_kwargs),
            FaultPlan(seed=index, transient_rate=0.1, max_transients=3),
        )
        devices.append(device)
        return device

    fabric = Fabric.build(
        num_shards,
        config=SwitchConfig(**config_kwargs),
        workers=0,
        device_factory=factory,
        retry=FAST_RETRY,
    )
    return fabric, devices


def test_failover_replace_proves_fingerprint_equality():
    fabric, devices = _faulty_fabric()
    for fid in range(1, 13):
        assert fabric.submit_and_wait(_admission(fid)).success
    residents = sorted(fabric.shards[0].controller.allocator.resident_fids())
    assert residents  # hash placement put someone on shard 0

    devices[0].kill()
    report = fabric.failover(0, replacement=_sim("sw0-replacement"))
    assert report.mode == "replace"
    assert report.fingerprint_match is True
    assert report.readmitted == residents
    assert not report.shed
    # The recovered column still carries the commit log: the serial
    # replay witness keeps holding on the replacement.
    patterns = {fid: listing1_pattern() for fid in range(1, 13)}
    live, replayed = replay_shard(fabric.shards[0], patterns)
    assert live == replayed
    # Sticky routes still resolve to the recovered shard.
    for fid in residents:
        assert fabric.route_of(fid) == 0
    assert fabric.submit_and_wait(
        ProvisioningRequest.withdrawal(fid=residents[0])
    ).success
    fabric.close()


def test_failover_redistribute_readmits_on_survivors():
    fabric, devices = _faulty_fabric()
    for fid in range(1, 13):
        assert fabric.submit_and_wait(_admission(fid)).success
    residents = sorted(fabric.shards[1].controller.allocator.resident_fids())
    assert residents

    devices[1].kill()
    report = fabric.failover(1)
    assert report.mode == "redistribute"
    assert sorted(report.readmitted + report.shed) == residents
    assert not fabric.shards[1].alive
    for fid in report.readmitted:
        assert fabric.route_of(fid) != 1
    # The degraded fleet still audits clean (dead shard skipped).
    assert all(not r.errors for r in fabric.audit().values())
    fabric.close()


def test_failover_redistribute_sheds_when_survivors_are_full():
    # A small register file: each shard only fits a few tenants.
    fabric, devices = _faulty_fabric(num_shards=2, words_per_stage=1024)
    fid = 1
    rejected = 0
    while rejected < 4 and fid < 200:
        if not fabric.submit_and_wait(_admission(fid)).success:
            rejected += 1
        fid += 1
    assert rejected >= 4  # the fleet is saturated
    victims = sorted(fabric.shards[1].controller.allocator.resident_fids())
    assert victims

    devices[1].kill()
    report = fabric.failover(1)
    assert report.mode == "redistribute"
    assert report.shed  # survivor had no room for everyone
    for fid in report.shed:
        assert fabric.route_of(fid) is None
    fabric.close()


def test_routing_to_dead_shard_raises_until_failover():
    fabric, devices = _faulty_fabric()
    for fid in range(1, 13):
        assert fabric.submit_and_wait(_admission(fid)).success
    residents = sorted(fabric.shards[2].controller.allocator.resident_fids())
    assert residents

    devices[2].kill()
    fabric.shards[2].alive = False
    with pytest.raises(FabricError, match="dead shard"):
        fabric.submit(ProvisioningRequest.withdrawal(fid=residents[0]))
    fabric.close()


def test_failover_validates_index_and_liveness():
    fabric, devices = _faulty_fabric()
    with pytest.raises(FabricError):
        fabric.failover(99)
    devices[0].kill()
    fabric.failover(0)
    with pytest.raises(FabricError, match="already"):
        fabric.failover(0)
    fabric.close()
