"""Unit + property tests for the assembler and wire encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    ActiveProgram,
    AssemblyError,
    EncodingError,
    Instruction,
    Opcode,
    assemble,
    decode_program,
    disassemble,
    encode_program,
)

LISTING_1 = """
    MAR_LOAD $2        ; locate bucket
    MEM_READ           ; first 4 bytes
    MBR_EQUALS_DATA_1  ; compare bytes
    CRET               ; partial match?
    MEM_READ           ; next 4 bytes
    MBR_EQUALS_DATA_2  ; compare bytes
    CRET               ; full match?
    RTS                ; create reply
    MEM_READ           ; read the value
    MBR_STORE          ; write to packet
    RETURN             ; fin.
"""


def test_assemble_listing_1():
    program = assemble(LISTING_1, name="cache-query")
    assert len(program) == 11
    assert program.memory_access_positions() == [2, 5, 9]
    assert program[0].operand == 2


def test_comments_and_blank_lines_ignored():
    program = assemble("NOP\n\n; comment only\n// another\nRETURN\n")
    assert len(program) == 2


def test_labels_resolved():
    program = assemble(
        """
        CJUMP @hit
        DROP
        hit: RTS
        RETURN
        """
    )
    assert program[0].is_branch
    assert program[0].label == program[2].label != 0


def test_unknown_opcode_rejected():
    with pytest.raises(AssemblyError):
        assemble("FROBNICATE")


def test_undefined_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("CJUMP @nowhere\nRETURN")


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("a: NOP\na: NOP")


def test_branch_without_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("CJUMP")


def test_operand_on_wrong_opcode_rejected():
    with pytest.raises(AssemblyError):
        assemble("MEM_READ $1")


def test_label_on_branch_rejected():
    with pytest.raises(AssemblyError):
        assemble("x: CJUMP @y\ny: NOP")


def test_empty_source_rejected():
    with pytest.raises(AssemblyError):
        assemble("; nothing here")


def test_disassemble_round_trip_listing_1():
    program = assemble(LISTING_1, name="cache-query")
    again = assemble(disassemble(program), name="cache-query")
    assert again.instructions == program.instructions


def test_encode_decode_round_trip():
    program = assemble(LISTING_1, name="cache-query")
    wire = encode_program(program)
    # 11 instructions + EOF, 2 bytes each
    assert len(wire) == (11 + 1) * 2
    decoded = decode_program(wire)
    assert decoded.instructions == program.instructions


def test_shrink_drops_executed_instructions():
    program = assemble("NOP\nNOP\nRETURN")
    executed = [program[0].with_executed(), program[1], program[2]]
    from repro.isa.encoding import encode_instructions

    wire = encode_instructions(tuple(executed), shrink=True)
    assert len(wire) == (2 + 1) * 2  # two remaining + EOF


def test_truncated_stream_rejected():
    program = assemble("NOP\nRETURN")
    wire = encode_program(program)
    with pytest.raises(EncodingError):
        decode_program(wire[:-2])  # EOF removed


def test_eof_only_stream_rejected():
    with pytest.raises(EncodingError):
        decode_program(bytes((0, 0)))


_SIMPLE_OPCODES = [
    Opcode.NOP,
    Opcode.MEM_READ,
    Opcode.MEM_WRITE,
    Opcode.HASH,
    Opcode.MBR_ADD_MBR2,
    Opcode.MAX,
    Opcode.MIN,
    Opcode.RTS,
    Opcode.CRET,
]


@st.composite
def straightline_programs(draw):
    body = draw(
        st.lists(st.sampled_from(_SIMPLE_OPCODES), min_size=1, max_size=40)
    )
    body.append(Opcode.RETURN)
    return ActiveProgram([Instruction(op) for op in body], name="prop")


@given(straightline_programs())
def test_wire_round_trip_property(program):
    assert decode_program(encode_program(program)).instructions == program.instructions


@given(straightline_programs())
def test_disassembly_round_trip_property(program):
    assert assemble(disassemble(program)).instructions == program.instructions
