"""Unit + property tests for the 2-byte instruction header."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Instruction, InstructionFlags, Opcode
from repro.isa.opcodes import BRANCH_OPCODES, OPERAND_OPCODES


def test_flag_byte_packing():
    instr = Instruction(Opcode.MBR_LOAD, operand=3, label=5)
    flags = instr.flag_byte()
    assert flags & InstructionFlags.OPERAND_MASK == 3
    assert (flags >> InstructionFlags.LABEL_SHIFT) & InstructionFlags.LABEL_MASK == 5
    assert not flags & InstructionFlags.EXECUTED


def test_executed_bit_round_trip():
    instr = Instruction(Opcode.NOP).with_executed()
    assert instr.executed
    decoded = Instruction.from_bytes(int(Opcode.NOP), instr.flag_byte())
    assert decoded.executed


def test_operand_rejected_on_non_operand_opcode():
    with pytest.raises(ValueError):
        Instruction(Opcode.MEM_READ, operand=1)


def test_operand_range_enforced():
    with pytest.raises(ValueError):
        Instruction(Opcode.MBR_LOAD, operand=8)


def test_label_range_enforced():
    with pytest.raises(ValueError):
        Instruction(Opcode.CJUMP, label=16)


def test_branch_label_is_destination():
    instr = Instruction(Opcode.CJUMP, label=2)
    assert instr.is_branch
    assert not instr.is_label_target


def test_non_branch_label_marks_target():
    instr = Instruction(Opcode.NOP, label=2)
    assert not instr.is_branch
    assert instr.is_label_target


def test_str_rendering():
    assert str(Instruction(Opcode.MBR_LOAD, operand=1)) == "MBR_LOAD $1"
    assert str(Instruction(Opcode.CJUMP, label=3)) == "CJUMP @L3"
    assert str(Instruction(Opcode.NOP, label=3)) == "L3: NOP"


@st.composite
def instructions(draw):
    opcode = draw(st.sampled_from(sorted(Opcode, key=int)))
    if opcode is Opcode.EOF:
        opcode = Opcode.NOP
    operand = draw(st.integers(0, 7)) if opcode in OPERAND_OPCODES else 0
    label = draw(st.integers(0, 15))
    if opcode in BRANCH_OPCODES and label == 0:
        label = 1
    return Instruction(opcode, operand=operand, label=label)


@given(instructions())
def test_byte_round_trip(instr):
    decoded = Instruction.from_bytes(int(instr.opcode), instr.flag_byte())
    assert decoded == instr


@given(instructions())
def test_with_executed_preserves_everything_else(instr):
    done = instr.with_executed()
    assert done.opcode == instr.opcode
    assert done.operand == instr.operand
    assert done.label == instr.label
    assert done.executed
