"""Unit tests for the opcode space."""

from repro.isa import (
    Opcode,
    OpcodeClass,
    MEMORY_OPCODES,
    BRANCH_OPCODES,
    opcode_class,
    is_memory_access,
)
from repro.isa.opcodes import (
    INGRESS_PREFERRED_OPCODES,
    OPERAND_OPCODES,
    RETURN_OPCODES,
    TABLE_OPERAND_OPCODES,
    has_operand,
    is_branch,
)


def test_opcodes_are_unique_bytes():
    values = [int(op) for op in Opcode]
    assert len(values) == len(set(values))
    assert all(0 <= v <= 0xFF for v in values)


def test_eof_is_zero():
    # A zeroed header must terminate a program (fail-safe truncation).
    assert Opcode.EOF == 0


def test_opcode_classes_match_appendix_sections():
    assert opcode_class(Opcode.NOP) is OpcodeClass.SPECIAL
    assert opcode_class(Opcode.MBR_LOAD) is OpcodeClass.DATA_COPY
    assert opcode_class(Opcode.MAX) is OpcodeClass.DATA_MANIPULATION
    assert opcode_class(Opcode.CJUMP) is OpcodeClass.CONTROL_FLOW
    assert opcode_class(Opcode.MEM_WRITE) is OpcodeClass.MEMORY
    assert opcode_class(Opcode.RTS) is OpcodeClass.FORWARDING


def test_every_opcode_has_a_class():
    for op in Opcode:
        assert opcode_class(op) in OpcodeClass


def test_memory_opcodes_complete():
    expected = {
        Opcode.MEM_READ,
        Opcode.MEM_WRITE,
        Opcode.MEM_INCREMENT,
        Opcode.MEM_MINREAD,
        Opcode.MEM_MINREADINC,
    }
    assert MEMORY_OPCODES == expected
    for op in expected:
        assert is_memory_access(op)
    assert not is_memory_access(Opcode.NOP)


def test_branch_opcodes():
    assert BRANCH_OPCODES == {Opcode.CJUMP, Opcode.CJUMPI, Opcode.UJUMP}
    for op in BRANCH_OPCODES:
        assert is_branch(op)
    assert not is_branch(Opcode.CRET)  # conditional return is not a skip


def test_operand_opcodes_take_slots():
    for op in OPERAND_OPCODES:
        assert has_operand(op)
    assert not has_operand(Opcode.MEM_READ)


def test_rts_prefers_ingress():
    assert Opcode.RTS in INGRESS_PREFERRED_OPCODES
    assert Opcode.CRTS in INGRESS_PREFERRED_OPCODES


def test_return_opcodes():
    assert Opcode.RETURN in RETURN_OPCODES
    assert Opcode.CRET in RETURN_OPCODES
    assert Opcode.CRETI in RETURN_OPCODES


def test_table_operand_opcodes_are_translation_helpers():
    assert TABLE_OPERAND_OPCODES == {Opcode.ADDR_MASK, Opcode.ADDR_OFFSET}


def test_disjoint_special_sets():
    assert not MEMORY_OPCODES & BRANCH_OPCODES
    assert not MEMORY_OPCODES & OPERAND_OPCODES
