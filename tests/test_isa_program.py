"""Unit tests for ActiveProgram structure and mutation primitives."""

import pytest

from repro.isa import ActiveProgram, Instruction, Opcode, ProgramError


def _cache_query_program():
    """The Listing 1 cache-query program, built by hand."""
    return ActiveProgram(
        [
            Instruction(Opcode.MAR_LOAD, operand=2),  # 1: locate bucket
            Instruction(Opcode.MEM_READ),  # 2: first 4 key bytes
            Instruction(Opcode.MBR_EQUALS_DATA_1),  # 3
            Instruction(Opcode.CRET),  # 4: partial match?
            Instruction(Opcode.MEM_READ),  # 5: next 4 key bytes
            Instruction(Opcode.MBR_EQUALS_DATA_2),  # 6
            Instruction(Opcode.CRET),  # 7: full match?
            Instruction(Opcode.RTS),  # 8: create reply
            Instruction(Opcode.MEM_READ),  # 9: read the value
            Instruction(Opcode.MBR_STORE),  # 10: write to packet
            Instruction(Opcode.RETURN),  # 11: fin
        ],
        name="cache-query",
    )


def test_listing1_structure():
    program = _cache_query_program()
    assert len(program) == 11
    # The paper derives LB = [2 5 9] from exactly this program (Sec. 4.2).
    assert program.memory_access_positions() == [2, 5, 9]
    # RTS at line 8 constrains the mutant set to the ingress pipeline.
    assert program.ingress_bound_positions() == [8]
    assert not program.has_fork()


def test_empty_program_rejected():
    with pytest.raises(ProgramError):
        ActiveProgram([])


def test_explicit_eof_rejected():
    with pytest.raises(ProgramError):
        ActiveProgram([Instruction(Opcode.EOF)])


def test_branch_to_undefined_label_rejected():
    with pytest.raises(ProgramError):
        ActiveProgram(
            [Instruction(Opcode.CJUMP, label=1), Instruction(Opcode.RETURN)]
        )


def test_backward_branch_rejected():
    with pytest.raises(ProgramError):
        ActiveProgram(
            [
                Instruction(Opcode.NOP, label=1),
                Instruction(Opcode.CJUMP, label=1),
                Instruction(Opcode.RETURN),
            ]
        )


def test_self_loop_branch_rejected():
    # A branch whose destination label resolves to its own position.
    # The public constructor cannot produce one (branches cannot carry a
    # target label in the 2-byte header), so build the degenerate shape
    # directly and run validation on it: an instruction claiming to be
    # both a branch to L1 and the L1 target at the same index.
    class _SelfLoop:
        opcode = Opcode.CJUMP
        label = 1
        is_branch = True
        is_label_target = True

    program = object.__new__(ActiveProgram)
    object.__setattr__(program, "instructions", (_SelfLoop(),))
    object.__setattr__(program, "name", "self-loop")
    with pytest.raises(ProgramError, match="self-loop"):
        program._validate()


def test_duplicate_label_rejected():
    with pytest.raises(ProgramError):
        ActiveProgram(
            [
                Instruction(Opcode.CJUMP, label=1),
                Instruction(Opcode.NOP, label=1),
                Instruction(Opcode.NOP, label=1),
            ]
        )


def test_forward_branch_accepted():
    program = ActiveProgram(
        [
            Instruction(Opcode.CJUMP, label=1),
            Instruction(Opcode.DROP),
            Instruction(Opcode.NOP, label=1),
            Instruction(Opcode.RETURN),
        ]
    )
    assert program.label_positions() == {1: 2}


def test_with_nops_before_shifts_accesses():
    program = _cache_query_program()
    # Figure 4: one NOP at line 2 moves accesses from [2,5,9] to [3,6,10].
    mutant = program.with_nops_before([(2, 1)])
    assert mutant.memory_access_positions() == [3, 6, 10]
    assert len(mutant) == 12
    # Original program is unchanged (immutability).
    assert program.memory_access_positions() == [2, 5, 9]


def test_with_nops_before_multiple_points():
    program = _cache_query_program()
    mutant = program.with_nops_before([(2, 1), (5, 2), (9, 1)])
    assert mutant.memory_access_positions() == [3, 8, 13]
    # RTS (line 8) shifts by the padding inserted before it (1 + 2 NOPs),
    # but not by the insertion at line 9 that follows it.
    assert mutant.ingress_bound_positions() == [11]


def test_with_nops_rejects_bad_positions():
    program = _cache_query_program()
    with pytest.raises(ProgramError):
        program.with_nops_before([(0, 1)])
    with pytest.raises(ProgramError):
        program.with_nops_before([(12, 1)])
    with pytest.raises(ProgramError):
        program.with_nops_before([(2, -1)])
    with pytest.raises(ProgramError):
        program.with_nops_before([(2, 1), (2, 1)])


def test_semantics_preserved_by_mutation():
    program = _cache_query_program()
    mutant = program.with_nops_before([(2, 3)])
    original_ops = [i.opcode for i in program if i.opcode is not Opcode.NOP]
    mutant_ops = [i.opcode for i in mutant if i.opcode is not Opcode.NOP]
    assert original_ops == mutant_ops


def test_retarget_arguments_pads_to_four():
    program = _cache_query_program()
    assert program.retarget_arguments([7, 9]) == [7, 9, 0, 0]
    assert program.retarget_arguments([1], slots=[2]) == [0, 0, 1, 0]


def test_pretty_listing_contains_all_lines():
    text = _cache_query_program().pretty()
    assert "MAR_LOAD" in text
    assert text.count("\n") == 11  # header + 11 instructions
