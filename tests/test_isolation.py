"""Isolation certifier + invariant auditor: proofs, rules, rollback.

Covers the interval domain, the effective-translation model, golden
reports for every new rule (ARMT010-ARMT015), the acceptance-criteria
regressions (strict rejection leaves state byte-identical; every
admission in a churn run carries a valid certificate), the sanitizer
hook, and the telemetry counters.
"""

from types import SimpleNamespace

from repro.analysis import (
    AddressInterval,
    analyze_address_intervals,
    audit_journal,
    certify_fid,
    certify_plan,
    effective_translations,
    replay_findings,
)
from repro.analysis.findings import RULES, Severity
from repro.controller.controller import ActiveRmtController
from repro.controller.service import pools_fingerprint
from repro.core.constraints import AccessPattern
from repro.isa import assemble
from repro.switchsim.config import SwitchConfig
from repro.switchsim.switch import ActiveSwitch
from repro.telemetry import MetricsRegistry, json_snapshot
from repro.workloads.arrivals import (
    ArrivalEvent,
    DepartureEvent,
    poisson_events,
)

COUNTER = """
MBR_LOAD $0
COPY_HASHDATA_MBR
HASH
ADDR_MASK
ADDR_OFFSET
MEM_INCREMENT
RETURN
"""

#: 8 instructions, access at position 7: in the 8-stage config below,
#: exactly one pass with MEM_WRITE at physical stage 7.
FILLER = """
MBR_LOAD $0
COPY_HASHDATA_MBR
HASH
NOP
ADDR_MASK
ADDR_OFFSET
MEM_WRITE
RETURN
"""

#: The duplicated ADDR_OFFSET re-adds the region base: provably past
#: the granted region whenever the region starts above word 0.
RIGGED = """
MBR_LOAD $0
COPY_HASHDATA_MBR
HASH
ADDR_MASK
ADDR_OFFSET
ADDR_OFFSET
MEM_WRITE
RETURN
"""


def _controller(config=None, **kwargs):
    return ActiveRmtController(
        ActiveSwitch(config or SwitchConfig()), **kwargs
    )


def _pattern(program, demands):
    return AccessPattern.from_program(
        program, demands=demands, name=program.name
    )


# ----------------------------------------------------------------------
# Interval domain
# ----------------------------------------------------------------------


def test_interval_join_is_hull():
    a = AddressInterval(2, 5)
    b = AddressInterval(10, 12)
    assert a.join(b) == AddressInterval(2, 12)
    assert a.join(AddressInterval.top()).is_top


def test_interval_mask_and_offset():
    top = AddressInterval.top()
    assert top.masked(1023) == AddressInterval(0, 1023)
    assert AddressInterval(0, 100).masked(1023) == AddressInterval(0, 100)
    assert AddressInterval(0, 1023).offset(2048) == AddressInterval(
        2048, 3071
    )
    # 32-bit overflow widens to TOP rather than wrapping.
    assert AddressInterval(0, 0xFFFFFFFF).offset(1).is_top


def test_interval_within_and_disjoint():
    interval = AddressInterval(2048, 3071)
    assert interval.within(2048, 3072)
    assert not interval.within(2048, 3071)
    assert AddressInterval(4096, 5119).disjoint(2048, 3072)
    assert not interval.disjoint(2048, 3072)


def test_analyze_address_intervals_counter():
    program = assemble(COUNTER, name="counter")
    intervals = analyze_address_intervals(
        program, {4: (1023, 2048), 5: (1023, 2048)}
    )
    # After ADDR_MASK (pos 4) and ADDR_OFFSET (pos 5), MEM_INCREMENT at
    # position 6 sees the translated window.
    assert intervals[6] == AddressInterval(2048, 3071)


def test_effective_translations_window_and_fallback():
    effective = effective_translations({5: (2048, 3072)}, 3)
    assert effective == {
        2: (1023, 2048),
        3: (1023, 2048),
        4: (1023, 2048),
        5: (1023, 2048),
    }


# ----------------------------------------------------------------------
# New rule catalog entries
# ----------------------------------------------------------------------


def test_new_rules_are_registered_errors():
    for index in range(10, 16):
        rule = RULES[f"ARMT{index:03d}"]
        assert rule.severity is Severity.ERROR
        assert rule.title and rule.description


# ----------------------------------------------------------------------
# Certifier: planned admissions
# ----------------------------------------------------------------------


def test_admission_carries_valid_certificate():
    controller = _controller()
    program = assemble(COUNTER, name="counter")
    report = controller.admit(
        fid=1, pattern=_pattern(program, [2]), program=program
    )
    assert report.success
    certificate = report.certificate
    assert certificate is not None and certificate.valid
    assert certificate.static_accesses >= 1
    for proof in certificate.accesses:
        assert proof.verdict in ("static", "runtime")


def test_certify_plan_flags_incumbent_overlap():
    controller = _controller()
    program = assemble(COUNTER, name="counter")
    plan = controller.what_if(fid=1, pattern=_pattern(program, [2]))
    stage, span = next(
        iter(plan.word_regions(SwitchConfig().block_words).items())
    )
    certificate = certify_plan(
        plan, incumbents={99: {stage: span}}
    )
    assert not certificate.valid
    assert {f.rule_id for f in certificate.findings} == {"ARMT011"}


def test_verify_off_skips_certification():
    controller = _controller(verify="off")
    program = assemble(COUNTER, name="counter")
    report = controller.admit(
        fid=1, pattern=_pattern(program, [2]), program=program
    )
    assert report.success and report.certificate is None


# ----------------------------------------------------------------------
# ARMT010: strict rejection with byte-identical state (acceptance)
# ----------------------------------------------------------------------


def _table_surface(controller):
    tables = controller.device
    out = []
    for stage in range(1, tables.num_stages + 1):
        out.append(
            (
                stage,
                tuple(tables.stage_fids(stage)),
                tuple(tables.stage_translation_fids(stage)),
                tables.stage_tcam(stage),
            )
        )
    return tuple(out)


def test_rigged_mutant_rejected_strict_state_intact():
    config = SwitchConfig(
        num_stages=8, ingress_stages=4, max_recirculations=0
    )
    controller = _controller(config, verify="strict")
    filler = assemble(FILLER, name="filler")
    assert controller.admit(
        fid=101, pattern=_pattern(filler, [8]), program=filler
    ).success

    pools_before = pools_fingerprint(controller.allocator)
    tables_before = _table_surface(controller)

    rigged = assemble(RIGGED, name="rigged")
    report = controller.admit(
        fid=102, pattern=_pattern(rigged, [4]), program=rigged
    )
    assert not report.success
    assert report.certificate is not None
    assert "ARMT010" in {f.rule_id for f in report.certificate.findings}
    assert "ARMT010" in (report.reason or "")

    # Zero state mutation: allocator pools and the whole table surface
    # are byte-identical to before the attempt.
    assert pools_fingerprint(controller.allocator) == pools_before
    assert _table_surface(controller) == tables_before
    assert 102 not in controller.allocator.resident_fids()


def test_rigged_mutant_warn_mode_commits_with_invalid_certificate():
    config = SwitchConfig(
        num_stages=8, ingress_stages=4, max_recirculations=0
    )
    controller = _controller(config, verify="warn")
    filler = assemble(FILLER, name="filler")
    assert controller.admit(
        fid=101, pattern=_pattern(filler, [8]), program=filler
    ).success
    rigged = assemble(RIGGED, name="rigged")
    report = controller.admit(
        fid=102, pattern=_pattern(rigged, [4]), program=rigged
    )
    assert report.success  # warn mode records, never blocks
    assert report.certificate is not None and not report.certificate.valid


# ----------------------------------------------------------------------
# Live certificates: ARMT012 / ARMT013 golden reports
# ----------------------------------------------------------------------


def test_certify_fid_flags_missing_grant():
    controller = _controller()
    program = assemble(COUNTER, name="counter")
    assert controller.admit(
        fid=1, pattern=_pattern(program, [2]), program=program
    ).success
    (stage,) = [
        s
        for s, r in controller.allocator.regions_for(1).items()
        if r is not None and r.count > 0
    ]
    # White-box corruption: rip out the grant behind the allocation.
    controller.switch.pipeline.stage(stage).table.remove_grant(1)
    certificate = certify_fid(1, controller.allocator, controller.device)
    assert not certificate.valid
    rules = {f.rule_id for f in certificate.findings}
    assert "ARMT012" in rules
    # The whole-state audit reaches the same verdict via the
    # table-certificates invariant.
    report = controller.audit()
    assert report.has_errors
    assert "ARMT012" in report.rule_ids()


def test_certify_fid_flags_escaping_translation():
    controller = _controller()
    program = assemble(COUNTER, name="counter")
    assert controller.admit(
        fid=1, pattern=_pattern(program, [2]), program=program
    ).success
    (stage,) = [
        s
        for s, r in controller.allocator.regions_for(1).items()
        if r is not None and r.count > 0
    ]
    # Point an installed translation far outside every granted region.
    table = controller.switch.pipeline.stage(max(1, stage - 1)).table
    table.install_translation(1, 1023, 10_000_000)
    certificate = certify_fid(1, controller.allocator, controller.device)
    assert not certificate.valid
    assert "ARMT013" in {f.rule_id for f in certificate.findings}


def test_audit_flags_tcam_accounting_drift():
    controller = _controller()
    program = assemble(COUNTER, name="counter")
    assert controller.admit(
        fid=1, pattern=_pattern(program, [2]), program=program
    ).success
    (stage,) = [
        s
        for s, r in controller.allocator.regions_for(1).items()
        if r is not None and r.count > 0
    ]
    controller.switch.pipeline.stage(stage).table._tcam_used += 1
    report = controller.audit()
    assert report.has_errors
    assert "ARMT014" in report.rule_ids()


def test_audit_journal_requires_callable_undo():
    good = SimpleNamespace(undo=lambda: None, description="grant")
    bad = SimpleNamespace(undo=None, description="mystery")
    report = audit_journal(SimpleNamespace(entries=[good, bad]))
    assert report.has_errors
    (finding,) = report.errors
    assert finding.rule_id == "ARMT015"
    assert "mystery" in finding.message
    clean = audit_journal(SimpleNamespace(entries=[good]))
    assert clean.clean


def test_replay_findings_divergence_is_armt015():
    assert replay_findings(("a",), ("a",)) == []
    (finding,) = replay_findings(("a",), ("b",), label="shard sw0")
    assert finding.rule_id == "ARMT015"
    assert "shard sw0" in finding.message


# ----------------------------------------------------------------------
# Churn acceptance: every admission certifies; sanitizer catches drift
# ----------------------------------------------------------------------


def test_churn_run_certifies_every_admission():
    controller = _controller(sanitizer=True)
    patterns = {}
    from repro.apps.base import EXEMPLAR_APPS

    for name, spec in EXEMPLAR_APPS.items():
        patterns[name] = spec.pattern()
    resident = set()
    admitted = 0
    for event in poisson_events(
        epochs=40, arrival_mean=2.0, departure_mean=1.0, seed=7
    ):
        if isinstance(event, DepartureEvent):
            if event.fid in resident:
                controller.withdraw(fid=event.fid)
                resident.discard(event.fid)
            continue
        assert isinstance(event, ArrivalEvent)
        report = controller.admit(
            fid=event.fid, pattern=patterns[event.app_name]
        )
        if report.success:
            resident.add(event.fid)
            admitted += 1
            assert report.certificate is not None
            assert report.certificate.valid
    assert admitted > 0
    # The sanitizer audited after every commit and found nothing.
    assert controller.audit_violations == []
    assert controller.audit().clean
    for certificate in controller.certificates().values():
        assert certificate.valid


def test_sanitizer_detects_corruption_on_next_commit():
    controller = _controller(sanitizer=True)
    program = assemble(COUNTER, name="counter")
    assert controller.admit(
        fid=1, pattern=_pattern(program, [2]), program=program
    ).success
    assert controller.audit_violations == []
    (stage,) = [
        s
        for s, r in controller.allocator.regions_for(1).items()
        if r is not None and r.count > 0
    ]
    controller.switch.pipeline.stage(stage).table.remove_grant(1)
    # The corruption surfaces at the next commit's sanitizer pass.
    assert controller.admit(
        fid=2, pattern=_pattern(program, [2]), program=program
    ).success
    assert controller.audit_violations
    assert "ARMT012" in {f.rule_id for f in controller.audit_violations}


def test_sanitizer_off_records_nothing():
    controller = _controller()
    program = assemble(COUNTER, name="counter")
    assert controller.admit(
        fid=1, pattern=_pattern(program, [2]), program=program
    ).success
    assert controller.sanitizer is False
    assert controller.audit_violations == []


# ----------------------------------------------------------------------
# Fleet hooks + telemetry
# ----------------------------------------------------------------------


def test_fabric_audit_and_certificates():
    from repro.fabric import Fabric
    from repro.controller.controller import ProvisioningRequest

    fabric = Fabric.build(2, workers=0, sanitizer=True)
    program = assemble(COUNTER, name="counter")
    for fid in range(1, 7):
        ticket = fabric.submit(
            ProvisioningRequest.admission(
                fid=fid, pattern=_pattern(program, [2])
            )
        )
        assert ticket.result().success
    audits = fabric.audit()
    assert set(audits) == {"sw0", "sw1"}
    assert all(report.clean for report in audits.values())
    certificates = fabric.certificates()
    total = sum(len(per_shard) for per_shard in certificates.values())
    assert total == 6
    for per_shard in certificates.values():
        for certificate in per_shard.values():
            assert certificate.valid
    fabric.close()


def test_certificate_and_violation_counters():
    registry = MetricsRegistry()
    controller = _controller(telemetry=registry, sanitizer=True)
    program = assemble(COUNTER, name="counter")
    assert controller.admit(
        fid=1, pattern=_pattern(program, [2]), program=program
    ).success
    counters = json_snapshot(registry)["counters"]
    assert any(
        series.startswith("isolation_certificates_total")
        and 'outcome="valid"' in series
        for series in counters
    )
    (stage,) = [
        s
        for s, r in controller.allocator.regions_for(1).items()
        if r is not None and r.count > 0
    ]
    controller.switch.pipeline.stage(stage).table.remove_grant(1)
    controller.audit()
    counters = json_snapshot(registry)["counters"]
    assert any(
        series.startswith("invariant_violations_total") for series in counters
    )


def test_certificate_to_dict_round_trips():
    controller = _controller()
    program = assemble(COUNTER, name="counter")
    report = controller.admit(
        fid=1, pattern=_pattern(program, [2]), program=program
    )
    payload = report.certificate.to_dict()
    assert payload["fid"] == 1 and payload["valid"] is True
    assert payload["accesses"]
    assert all(
        proof["verdict"] in ("static", "runtime")
        for proof in payload["accesses"]
    )
