"""Odds and ends: app registry, experiment helpers, and departures."""

import pytest

from repro.apps import EXEMPLAR_APPS, app_by_name
from repro.experiments.common import (
    drive_events,
    format_table,
    make_controller,
    mean_by_epoch,
)
from repro.workloads.arrivals import ArrivalEvent, DepartureEvent


def test_registry_contains_the_three_exemplars():
    assert set(EXEMPLAR_APPS) == {"cache", "heavy-hitter", "load-balancer"}
    assert EXEMPLAR_APPS["cache"].elastic
    assert not EXEMPLAR_APPS["heavy-hitter"].elastic
    assert not EXEMPLAR_APPS["load-balancer"].elastic


def test_registry_programs_match_patterns():
    for spec in EXEMPLAR_APPS.values():
        program = spec.program()
        pattern = spec.pattern()
        assert pattern.program_length == len(program)
        assert tuple(program.memory_access_positions()) == pattern.lower_bounds


def test_app_by_name_errors():
    assert app_by_name("cache").name == "cache"
    with pytest.raises(KeyError):
        app_by_name("firewall")


def test_drive_events_handles_departures():
    controller = make_controller()
    events = [
        ArrivalEvent(epoch=0, fid=1, app_name="cache"),
        ArrivalEvent(epoch=1, fid=2, app_name="cache"),
        DepartureEvent(epoch=2, fid=1),
        ArrivalEvent(epoch=3, fid=3, app_name="cache"),
    ]
    run = drive_events(controller, events)
    assert run.admitted == 3
    assert run.failed == 0
    assert controller.allocator.resident_fids() == [2, 3]
    # Records exist only for arrivals.
    assert len(run.records) == 3


def test_drive_events_skips_departure_of_failed_instance():
    controller = make_controller()
    # Force failures by exhausting heavy hitters first.
    hh = EXEMPLAR_APPS["heavy-hitter"].pattern()
    fid = 100
    while controller.admit(fid, hh).success:
        fid += 1
    failed_fid = 999
    events = [
        ArrivalEvent(epoch=0, fid=failed_fid, app_name="heavy-hitter"),
        DepartureEvent(epoch=1, fid=failed_fid),  # must be a no-op
        ArrivalEvent(epoch=2, fid=1000, app_name="cache"),
    ]
    run = drive_events(controller, events)
    assert run.failed == 1
    assert run.admitted == 1


def test_mean_by_epoch_aligns_runs():
    controller_a = make_controller()
    controller_b = make_controller()
    events = [ArrivalEvent(epoch=i, fid=i + 1, app_name="cache") for i in range(4)]
    run_a = drive_events(controller_a, events)
    run_b = drive_events(controller_b, events)
    means = mean_by_epoch([run_a, run_b], "utilization")
    assert len(means) == 4
    assert means == run_a.series("utilization")  # identical runs


def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 22], [333, 4]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines)


def test_format_table_empty_rows():
    text = format_table(["col"], [])
    assert "col" in text
