"""Unit + property tests for the full active-packet codec."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Instruction, Opcode
from repro.packets import (
    AccessConstraintEntry,
    ActivePacket,
    AllocationRequestHeader,
    AllocationResponseHeader,
    ControlFlags,
    HeaderError,
    MacAddress,
    PacketType,
    StageRegion,
    decode_packet,
    encode_packet,
)

SRC = MacAddress.from_host_id(1)
DST = MacAddress.from_host_id(2)


def _program_packet(**kwargs):
    return ActivePacket.program(
        src=SRC,
        dst=DST,
        fid=3,
        instructions=[
            Instruction(Opcode.MAR_LOAD, operand=2),
            Instruction(Opcode.MEM_READ),
            Instruction(Opcode.RETURN),
        ],
        args=[0xDEADBEEF, 0x12345678, 0, 0],
        **kwargs,
    )


def test_program_packet_round_trip():
    packet = _program_packet(payload=b"hello-world")
    decoded = decode_packet(encode_packet(packet))
    assert decoded.fid == 3
    assert decoded.args[:2] == [0xDEADBEEF, 0x12345678]
    assert [i.opcode for i in decoded.instructions] == [
        Opcode.MAR_LOAD,
        Opcode.MEM_READ,
        Opcode.RETURN,
    ]
    assert decoded.payload == b"hello-world"
    assert decoded.eth.src == SRC


def test_shrink_omits_executed_instructions():
    packet = _program_packet()
    packet.instructions[0] = packet.instructions[0].with_executed()
    full = encode_packet(packet, shrink=False)
    shrunk = encode_packet(packet, shrink=True)
    assert len(shrunk) == len(full) - 2
    decoded = decode_packet(shrunk)
    assert [i.opcode for i in decoded.instructions] == [
        Opcode.MEM_READ,
        Opcode.RETURN,
    ]


def test_no_shrink_flag_disables_shrinking():
    packet = _program_packet(flags=ControlFlags.NO_SHRINK)
    packet.instructions[0] = packet.instructions[0].with_executed()
    assert len(encode_packet(packet, shrink=True)) == len(
        encode_packet(packet, shrink=False)
    )


def test_request_packet_round_trip():
    request = AllocationRequestHeader(
        program_length=11,
        accesses=(
            AccessConstraintEntry(2, 1, 0),
            AccessConstraintEntry(5, 3, 0),
            AccessConstraintEntry(9, 4, 0),
        ),
        ingress_bound_position=8,
    )
    packet = ActivePacket.alloc_request(
        src=SRC, dst=DST, fid=9, request=request, flags=ControlFlags.ELASTIC
    )
    decoded = decode_packet(encode_packet(packet))
    assert decoded.ptype == PacketType.ALLOC_REQUEST
    assert decoded.request == request
    assert decoded.has_flag(ControlFlags.ELASTIC)


def test_response_packet_round_trip():
    response = AllocationResponseHeader.from_map({4: StageRegion(0, 4096)})
    packet = ActivePacket.alloc_response(src=DST, dst=SRC, fid=9, response=response)
    decoded = decode_packet(encode_packet(packet))
    assert decoded.response == response


def test_control_packet_round_trip():
    packet = ActivePacket.control(
        src=SRC, dst=DST, fid=9, flags=ControlFlags.SNAPSHOT_COMPLETE
    )
    decoded = decode_packet(encode_packet(packet))
    assert decoded.ptype == PacketType.CONTROL
    assert decoded.has_flag(ControlFlags.SNAPSHOT_COMPLETE)
    assert decoded.instructions == []


def test_non_active_ethertype_rejected():
    packet = _program_packet()
    raw = bytearray(encode_packet(packet))
    raw[12:14] = b"\x08\x00"  # IPv4 ethertype
    with pytest.raises(HeaderError):
        decode_packet(bytes(raw))


def test_rts_swaps_and_flags():
    packet = _program_packet()
    packet.return_to_sender()
    assert packet.eth.dst == SRC
    assert packet.has_flag(ControlFlags.FROM_SWITCH)


def test_arg_accessors_extend():
    packet = _program_packet()
    packet.set_arg(6, 77)
    assert packet.get_arg(6) == 77
    assert packet.get_arg(7) == 0
    decoded = decode_packet(encode_packet(packet))
    assert decoded.get_arg(6) == 77  # second argument header materialized


def test_clone_is_independent():
    packet = _program_packet()
    twin = packet.clone()
    twin.set_arg(0, 1)
    twin.instructions.pop()
    assert packet.get_arg(0) == 0xDEADBEEF
    assert len(packet.instructions) == 3


@given(
    fid=st.integers(0, 0xFFFF),
    seq=st.integers(0, 0xFFFFFFFF),
    args=st.lists(st.integers(0, 0xFFFFFFFF), min_size=0, max_size=8),
    payload=st.binary(max_size=64),
    n_instrs=st.integers(1, 30),
)
def test_program_round_trip_property(fid, seq, args, payload, n_instrs):
    packet = ActivePacket.program(
        src=SRC,
        dst=DST,
        fid=fid,
        seq=seq,
        instructions=[Instruction(Opcode.NOP)] * n_instrs,
        args=args,
        payload=payload,
    )
    decoded = decode_packet(encode_packet(packet))
    assert decoded.fid == fid
    assert decoded.initial.seq == seq
    assert decoded.payload == payload
    assert len(decoded.instructions) == n_instrs
    for slot, value in enumerate(args):
        assert decoded.get_arg(slot) == value
