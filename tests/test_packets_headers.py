"""Unit tests for fixed-size active header encodings (Section 3.3)."""

import pytest

from repro.packets import (
    AccessConstraintEntry,
    AllocationRequestHeader,
    AllocationResponseHeader,
    ArgumentHeader,
    EthernetHeader,
    HeaderError,
    InitialHeader,
    Ipv4Header,
    MacAddress,
    PacketType,
    StageRegion,
    UdpHeader,
)


def test_initial_header_is_10_bytes():
    header = InitialHeader(ptype=PacketType.PROGRAM, fid=7, seq=42, flags=0x10)
    assert InitialHeader.SIZE == 10
    assert len(header.encode()) == 10
    assert InitialHeader.decode(header.encode()) == header


def test_initial_header_rejects_bad_type():
    with pytest.raises(HeaderError):
        InitialHeader(ptype=0x7F, fid=1)


def test_initial_header_version_check():
    raw = bytearray(InitialHeader(ptype=PacketType.PROGRAM, fid=1).encode())
    raw[0] = 99
    with pytest.raises(HeaderError):
        InitialHeader.decode(bytes(raw))


def test_argument_header_is_16_bytes():
    header = ArgumentHeader(data=(1, 2, 3, 4))
    assert ArgumentHeader.SIZE == 16
    assert len(header.encode()) == 16
    assert ArgumentHeader.decode(header.encode()) == header


def test_argument_header_from_values_pads():
    header = ArgumentHeader.from_values([5])
    assert header.data == (5, 0, 0, 0)


def test_request_header_paper_entry_size():
    # "eight three-byte headers corresponding to eight potential accesses"
    assert AccessConstraintEntry.SIZE == 3
    entry = AccessConstraintEntry(lower_bound=2, min_distance=1, demand_blocks=0)
    assert AccessConstraintEntry.decode(entry.encode()) == entry


def test_request_header_round_trip():
    request = AllocationRequestHeader(
        program_length=11,
        accesses=(
            AccessConstraintEntry(2, 1, 0),
            AccessConstraintEntry(5, 3, 0),
            AccessConstraintEntry(9, 4, 0),
        ),
        ingress_bound_position=8,
    )
    wire = request.encode()
    assert len(wire) == AllocationRequestHeader.SIZE
    decoded = AllocationRequestHeader.decode(wire)
    assert decoded == request


def test_request_header_rejects_too_many_accesses():
    entries = tuple(AccessConstraintEntry(i + 1, 1, 1) for i in range(9))
    with pytest.raises(HeaderError):
        AllocationRequestHeader(program_length=20, accesses=entries)


def test_response_header_is_160_bytes():
    assert AllocationResponseHeader.SIZE == 160
    response = AllocationResponseHeader.empty()
    assert len(response.encode()) == 160
    assert AllocationResponseHeader.decode(response.encode()) == response


def test_response_header_from_map():
    response = AllocationResponseHeader.from_map(
        {2: StageRegion(0, 1024), 5: StageRegion(512, 2048)}
    )
    assert response.allocated_stages() == [2, 5]
    assert response.region_for_stage(2).size == 1024
    assert response.region_for_stage(1).is_none
    decoded = AllocationResponseHeader.decode(response.encode())
    assert decoded == response


def test_stage_region_contains():
    region = StageRegion(10, 20)
    assert region.contains(10)
    assert region.contains(19)
    assert not region.contains(20)
    assert not region.contains(9)
    assert not StageRegion.none().contains(0)


def test_stage_region_rejects_inverted():
    with pytest.raises(HeaderError):
        StageRegion(20, 10)


def test_mac_address_parsing():
    mac = MacAddress.parse("02:00:00:00:00:2a")
    assert mac.value == 0x02000000002A
    assert str(mac) == "02:00:00:00:00:2a"
    assert MacAddress.from_bytes(mac.encode()) == mac


def test_mac_from_host_id_is_deterministic():
    assert MacAddress.from_host_id(3) == MacAddress.from_host_id(3)
    assert MacAddress.from_host_id(3) != MacAddress.from_host_id(4)


def test_ethernet_header_round_trip_and_swap():
    header = EthernetHeader(
        dst=MacAddress.from_host_id(1),
        src=MacAddress.from_host_id(2),
        ethertype=0x83B2,
    )
    assert EthernetHeader.decode(header.encode()) == header
    swapped = header.swapped()
    assert swapped.dst == header.src
    assert swapped.src == header.dst


def test_ipv4_round_trip_and_swap():
    header = Ipv4Header(src=0x0A000001, dst=0x0A000002)
    assert Ipv4Header.decode(header.encode()) == header
    assert header.swapped().src == header.dst


def test_udp_round_trip_and_swap():
    header = UdpHeader(src_port=4000, dst_port=5000)
    assert UdpHeader.decode(header.encode()) == header
    assert header.swapped().dst_port == 4000
