"""Tests for the discrete-event simulation harness, culminating in an
end-to-end cache scenario with real provisioning over simulated time."""

import pytest

from repro.controller import ActiveRmtController
from repro.packets import MacAddress
from repro.sim import (
    CacheClientHost,
    EventLoop,
    KVServerHost,
    KVStore,
    SimNetwork,
    SimProvisioner,
    decode_get,
    decode_value,
    encode_get,
    encode_value,
)
from repro.sim.kvstore import value_for_key
from repro.switchsim import ActiveSwitch
from repro.workloads import ZipfKeyGenerator

CLIENT = MacAddress.from_host_id(1)
SERVER = MacAddress.from_host_id(2)


def test_eventloop_ordering():
    loop = EventLoop()
    order = []
    loop.schedule(0.2, lambda: order.append("b"))
    loop.schedule(0.1, lambda: order.append("a"))
    loop.schedule(0.3, lambda: order.append("c"))
    loop.run_until(0.25)
    assert order == ["a", "b"]
    assert loop.now == 0.25
    loop.run()
    assert order == ["a", "b", "c"]


def test_eventloop_cancel():
    loop = EventLoop()
    fired = []
    event = loop.schedule(0.1, lambda: fired.append(1))
    event.cancel()
    loop.run()
    assert fired == []


def test_eventloop_rejects_past():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.schedule(-1, lambda: None)


def test_eventloop_every_repeats():
    loop = EventLoop()
    ticks = []
    loop.every(0.1, lambda: ticks.append(loop.now), until=0.55)
    loop.run()
    assert len(ticks) == 5


def test_kv_payload_round_trip():
    assert decode_get(encode_get(b"abcdefgh")) == b"abcdefgh"
    assert decode_value(encode_value(b"abcdefgh", 42)) == (b"abcdefgh", 42)
    assert decode_get(b"") is None
    assert decode_value(encode_get(b"abcdefgh")) is None


def test_kvstore_deterministic_values():
    store = KVStore()
    v1 = store.get(b"abcdefgh")
    assert v1 == value_for_key(b"abcdefgh")
    store.put(b"abcdefgh", 5)
    assert store.get(b"abcdefgh") == 5
    assert store.gets == 2


def _build_world(num_clients=1, request_interval_s=200e-6, batch_window_s=None):
    loop = EventLoop()
    switch = ActiveSwitch()
    controller = ActiveRmtController(switch)
    network = SimNetwork(loop, switch, batch_window_s=batch_window_s)
    server = KVServerHost(SERVER, loop=loop)
    network.attach(server, 2)
    _provisioner = SimProvisioner(loop, network, controller, horizon_s=60.0)
    clients = []
    for index in range(num_clients):
        workload = ZipfKeyGenerator(num_keys=5000, alpha=0.99, seed=index)
        client = CacheClientHost(
            mac=MacAddress.from_host_id(10 + index),
            server_mac=SERVER,
            switch_mac=controller.mac,
            fid=index + 1,
            loop=loop,
            workload=workload,
            request_interval_s=request_interval_s,
        )
        network.attach(client, 10 + index)
        clients.append(client)
    return loop, switch, controller, network, clients


def test_unactivated_requests_all_miss():
    loop, _switch, _controller, _network, clients = _build_world()
    client = clients[0]
    client.start_requests()
    loop.run_until(0.2)
    assert client.events, "requests must be answered by the server"
    assert all(not hit for _t, hit in client.events)


def test_cache_allocation_over_sim_time_then_hits():
    """End-to-end: allocate, populate, and observe a rising hit rate."""
    loop, _switch, _controller, _network, clients = _build_world()
    client = clients[0]
    client.populate_limit = 2000
    client.start_requests()
    loop.run_until(0.05)
    client.request_cache_allocation()
    # Run long enough for provisioning + all populate rounds (~1.5 s).
    loop.run_until(4.0)
    early = [hit for t, hit in client.events if t < 0.1]
    late = [hit for t, hit in client.events if t > 2.5]
    assert not any(early), "no hits before allocation"
    late_rate = sum(late) / len(late)
    assert late_rate > 0.5, f"late hit rate {late_rate:.2f} too low"
    # Popular objects are served by the switch, not the server.
    assert client.cache.hits > 0


def test_provisioning_log_records_admission():
    loop, _switch, _controller, _network, clients = _build_world()
    client = clients[0]
    client.request_cache_allocation()
    loop.run_until(2.0)
    # Find the provisioner via the loop-closure: re-create instead.
    assert client.shim.synthesized is not None
    assert client.cache.capacity > 0


def test_batched_network_matches_per_packet_delivery():
    """The batched drain must not change what any host observes: the
    same requests produce the same answers at the same simulated times
    as the per-packet path."""
    results = []
    for batch_window_s in (None, 0.0):
        loop, switch, _c, _network, clients = _build_world(
            batch_window_s=batch_window_s
        )
        client = clients[0]
        client.start_requests()
        loop.run_until(0.05)
        results.append((client.events, client.rx_packets, switch.perf.packets))
    (events_a, rx_a, pkts_a), (events_b, rx_b, pkts_b) = results
    assert events_a == events_b
    assert rx_a == rx_b
    assert pkts_a == pkts_b
    assert pkts_b > 0


def test_second_tenant_disrupts_first_only_when_sharing():
    """Figure 9b/10 dynamics: a fourth tenant sharing stages briefly
    disrupts the incumbent, then both stabilize at lower hit rates."""
    loop, switch, controller, _network, clients = _build_world(
        num_clients=4, request_interval_s=500e-6
    )
    for client in clients:
        client.populate_limit = 500
        client.start_requests()
    # Staggered arrivals (compressed from the paper's 5 s spacing).
    for index, client in enumerate(clients):
        loop.schedule_at(0.01 + 2.5 * index, client.request_cache_allocation)
    loop.run_until(12.0)
    # All four obtained allocations.
    for client in clients:
        assert client.shim.synthesized is not None, "tenant not allocated"
    # The fourth tenant shares stages with an incumbent: someone was
    # reallocated at least once.
    assert controller.reports, "no admissions recorded"
    realloc_waves = [r for r in controller.reports if r.reallocated_fids]
    assert realloc_waves, "fourth tenant must have squeezed an incumbent"
    # After the dust settles everyone serves hits again.
    for client in clients:
        late_rate = client.hit_rate_since(11.0)
        assert late_rate > 0.3, f"tenant fid={client.shim.fid} starved"
