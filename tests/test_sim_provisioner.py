"""Focused tests for the time-staggered provisioner."""

from repro.apps import heavy_hitter_pattern, heavy_hitter_program
from repro.client import ClientShim
from repro.controller import ActiveRmtController
from repro.packets import ControlFlags, MacAddress
from repro.sim import EventLoop, SimNetwork, SimProvisioner
from repro.sim.network import Host
from repro.switchsim import ActiveSwitch

from tests.test_core_constraints import listing1_pattern, LISTING_1
from repro.isa import assemble

CLIENT = MacAddress.from_host_id(1)


class _RecordingHost(Host):
    def __init__(self, mac):
        super().__init__(mac)
        self.received = []

    def on_packet(self, packet):
        super().on_packet(packet)
        self.received.append(packet)


def _world():
    loop = EventLoop()
    switch = ActiveSwitch()
    controller = ActiveRmtController(switch)
    network = SimNetwork(loop, switch)
    host = _RecordingHost(CLIENT)
    network.attach(host, 1)
    provisioner = SimProvisioner(loop, network, controller, horizon_s=30.0)
    return loop, switch, controller, network, provisioner, host


def test_response_arrives_after_provisioning_delay():
    loop, _switch, controller, _network, provisioner, host = _world()
    shim = ClientShim(
        mac=CLIENT,
        switch_mac=controller.mac,
        fid=1,
        program=assemble(LISTING_1, name="cache-query"),
    )
    host.send(shim.request_allocation())
    loop.run_until(0.01)
    # Compute + install takes modeled time; no response yet at t ~= 0.
    responses = [p for p in host.received if p.response is not None]
    admitted_at = provisioner.provisioning_log
    assert admitted_at, "request must have been polled"
    loop.run_until(2.0)
    responses = [p for p in host.received if p.response is not None]
    assert len(responses) == 1
    assert not responses[0].has_flag(ControlFlags.ALLOC_FAILED)


def test_pattern_override_reaches_allocator():
    loop, _switch, controller, _network, provisioner, host = _world()
    fid = 5
    shim = ClientShim(
        mac=CLIENT,
        switch_mac=controller.mac,
        fid=fid,
        program=heavy_hitter_program(),
        demands=[16] * 6,
    )
    # The wire request cannot carry the alias; override it locally.
    provisioner.pattern_overrides[fid] = heavy_hitter_pattern()
    host.send(shim.request_allocation())
    loop.run_until(2.0)
    record = controller.allocator.apps[fid]
    assert record.pattern.aliases == (-1, -1, -1, -1, -1, 2)
    # The aliased accesses share a physical stage.
    stages = record.mutant.physical_stages
    assert len(stages) == 5  # 6 accesses, one aliased pair


def test_failed_admission_gets_failure_response():
    loop, _switch, controller, _network, provisioner, host = _world()
    # Exhaust the device first (synchronously).
    import dataclasses

    greedy = dataclasses.replace(listing1_pattern(), demands=(255, 255, 255))
    fid = 100
    while controller.admit(fid, greedy).success:
        fid += 1
    shim = ClientShim(
        mac=CLIENT,
        switch_mac=controller.mac,
        fid=1,
        program=assemble(LISTING_1, name="cache-query"),
        demands=[255, 255, 255],
    )
    host.send(shim.request_allocation())
    loop.run_until(2.0)
    failures = [
        p for p in host.received if p.has_flag(ControlFlags.ALLOC_FAILED)
    ]
    assert len(failures) == 1
    log = provisioner.provisioning_log[-1]
    assert not log["success"]


def test_deallocate_via_control_packet():
    loop, _switch, controller, _network, _provisioner, host = _world()
    shim = ClientShim(
        mac=CLIENT,
        switch_mac=controller.mac,
        fid=3,
        program=assemble(LISTING_1, name="cache-query"),
    )
    host.send(shim.request_allocation())
    loop.run_until(2.0)
    assert 3 in controller.allocator.apps
    host.send(shim.deallocate())
    loop.run_until(3.0)
    assert 3 not in controller.allocator.apps
