"""Tests for the batched data path, perf counters, and switch stats.

The invariant: ``receive_batch`` is observably identical to calling
``receive`` per packet -- same outputs in the same order, same port
statistics, same digest queue -- only the bookkeeping is amortized.
"""

import pytest

from repro.isa import assemble
from repro.packets import ActivePacket, MacAddress
from repro.packets.codec import encode_packet
from repro.switchsim import (
    ActiveSwitch,
    BatchResult,
    RecirculationGovernor,
    SwitchConfig,
)
from repro.sim import BatchDrain, EventLoop

CLIENT = MacAddress.from_host_id(1)
SERVER = MacAddress.from_host_id(2)


def _switch(**kwargs):
    sw = ActiveSwitch(**kwargs)
    sw.register_host(CLIENT, 1)
    sw.register_host(SERVER, 2)
    return sw


def _program(source, fid=1, args=None):
    return ActivePacket.program(
        src=CLIENT,
        dst=SERVER,
        fid=fid,
        instructions=list(assemble(source)),
        args=args or [],
    )


def _workload():
    return [
        (_program("NOP\nRETURN"), 1),
        (_program("RTS\nRETURN"), 1),
        (_program("MBR_LOAD $0\nCRETI\nDROP\nRETURN", args=[1, 0, 0, 0]), 1),
        (_program("MAR_LOAD $0\nMEM_READ\nRETURN", args=[0, 0, 0, 0]), 1),
        (ActivePacket.control(src=CLIENT, dst=SERVER, fid=5, flags=0), 1),
        (_program("FORK\nNOP\nRETURN"), 2),
        (_program("\n".join(["NOP"] * 25 + ["RETURN"])), 2),
    ]


def test_receive_batch_matches_sequential():
    sequential = _switch()
    batched = _switch()

    seq_outputs = []
    for packet, port in _workload():
        seq_outputs.extend(sequential.receive(packet, port))
    result = batched.receive_batch(_workload())

    assert [o.port for o in result.outputs] == [o.port for o in seq_outputs]
    assert [encode_packet(o.packet) for o in result.outputs] == [
        encode_packet(o.packet) for o in seq_outputs
    ]
    assert [o.latency_us for o in result.outputs] == [
        o.latency_us for o in seq_outputs
    ]
    assert batched.port_stats.keys() == sequential.port_stats.keys()
    for port, stats in sequential.port_stats.items():
        assert batched.port_stats[port] == stats
    assert batched.digests_pending == sequential.digests_pending
    assert [encode_packet(p) for p in batched.poll_digests()] == [
        encode_packet(p) for p in sequential.poll_digests()
    ]


def test_batch_result_counters():
    switch = _switch()
    result = switch.receive_batch(_workload())
    assert isinstance(result, BatchResult)
    assert result.packets == 7
    assert result.programs == 6  # the FAULT program still executed
    assert result.digested == 1
    assert result.plain_forwarded == 0
    assert result.faulted == 1  # ungranted MEM_READ
    assert result.dropped == 1  # CRETI on a non-zero MBR -> DROP
    assert result.returned == 1  # RTS
    assert result.forwarded == 3
    assert len(result) == len(result.outputs)
    assert list(iter(result)) == result.outputs


def test_receive_batch_uniform_port():
    pairs = _switch()
    uniform = _switch()
    packets = [_program("NOP\nRETURN") for _ in range(3)]
    a = pairs.receive_batch([(p, 1) for p in packets])
    b = uniform.receive_batch(
        [_program("NOP\nRETURN") for _ in range(3)], in_port=1
    )
    assert a.packets == b.packets == 3
    assert [o.port for o in a] == [o.port for o in b]
    assert pairs.port_stats[1].rx_packets == uniform.port_stats[1].rx_packets


def test_perf_counters_track_dispositions():
    switch = _switch()
    switch.receive_batch(_workload())
    perf = switch.perf
    assert perf.packets == 7
    assert perf.programs == 6
    assert perf.batches == 1
    assert perf.batched_packets == 7
    assert perf.returned == 1
    assert perf.dropped == 1
    assert perf.faulted == 1
    # Scalar path counts into the same counters.
    switch.receive(_program("NOP\nRETURN"), in_port=1)
    assert perf.packets == 8
    assert perf.batched_packets == 7


def test_stats_surface():
    switch = _switch()
    switch.receive_batch(_workload())
    stats = switch.stats()
    for key in (
        "packets",
        "programs",
        "packets_per_second",
        "digests_pending",
        "digests_delivered",
        "pipeline",
        "program_cache",
        "governor_suppressed",
    ):
        assert key in stats
    assert stats["program_cache"]["misses"] > 0
    assert stats["pipeline"]["faults"] == 1
    # Cache disabled: same schema, all-zero values (no None branch).
    uncached = ActiveSwitch(SwitchConfig(program_cache_entries=0)).stats()[
        "program_cache"
    ]
    assert uncached == {
        "entries": 0,
        "capacity": 0,
        "hits": 0,
        "misses": 0,
        "hit_rate": 0.0,
        "evictions": 0,
        "invalidations": 0,
    }
    assert sorted(uncached) == sorted(stats["program_cache"])


# ----------------------------------------------------------------------
# poll_digests semantics
# ----------------------------------------------------------------------


@pytest.fixture
def loaded_switch():
    switch = _switch()
    for _ in range(3):
        switch.receive(
            ActivePacket.control(src=CLIENT, dst=SERVER, fid=1, flags=0), 1
        )
    return switch


def test_poll_digests_none_drains_all(loaded_switch):
    assert len(loaded_switch.poll_digests()) == 3
    assert loaded_switch.digests_pending == 0


def test_poll_digests_zero_is_a_real_bound(loaded_switch):
    assert loaded_switch.poll_digests(limit=0) == []
    assert loaded_switch.digests_pending == 3


def test_poll_digests_partial_limit(loaded_switch):
    assert len(loaded_switch.poll_digests(limit=2)) == 2
    assert loaded_switch.digests_pending == 1


# ----------------------------------------------------------------------
# Constructor injection (governor, clock)
# ----------------------------------------------------------------------


def test_governor_and_clock_constructor_injection():
    governor = RecirculationGovernor(rate_per_second=1e-9, burst=1.0)
    times = iter([0.0, 0.001, 0.002])
    switch = _switch(governor=governor, clock=lambda: next(times))
    long_program = "\n".join(["NOP"] * 25 + ["RETURN"])  # 1 recirculation
    first = switch.receive(_program(long_program), in_port=1)
    assert first[0].result is not None  # admitted: burst covers it
    second = switch.receive(_program(long_program), in_port=1)
    assert second[0].result is None  # suppressed -> plain forwarding
    assert switch.perf.suppressed == 1
    assert switch.stats()["governor_suppressed"] == governor.suppressed


def test_suppressed_counted_in_batch():
    governor = RecirculationGovernor(rate_per_second=1e-9, burst=0.5)
    switch = _switch(governor=governor)
    long_program = "\n".join(["NOP"] * 25 + ["RETURN"])
    result = switch.receive_batch([(_program(long_program), 1)])
    assert result.suppressed == 1
    assert result.programs == 0


# ----------------------------------------------------------------------
# BatchDrain (eventloop coalescing)
# ----------------------------------------------------------------------


def test_batch_drain_coalesces_same_instant():
    loop = EventLoop()
    batches = []
    drain = BatchDrain(loop, batches.append, window_s=0.0)
    loop.schedule(0.0, lambda: drain.submit("a"))
    loop.schedule(0.0, lambda: drain.submit("b"))
    loop.schedule(1.0, lambda: drain.submit("c"))
    loop.run()
    assert batches == [["a", "b"], ["c"]]
    assert drain.flushes == 2
    assert drain.drained == 3


def test_batch_drain_max_batch_flushes_immediately():
    loop = EventLoop()
    batches = []
    drain = BatchDrain(loop, batches.append, window_s=10.0, max_batch=2)
    drain.submit(1)
    drain.submit(2)  # hits max_batch: flushed without waiting
    assert batches == [[1, 2]]
    drain.submit(3)
    loop.run()
    assert batches == [[1, 2], [3]]


def test_batch_drain_rejects_bad_args():
    loop = EventLoop()
    with pytest.raises(ValueError):
        BatchDrain(loop, lambda items: None, window_s=-1.0)
    with pytest.raises(ValueError):
        BatchDrain(loop, lambda items: None, max_batch=0)
