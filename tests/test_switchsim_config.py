"""Unit tests for SwitchConfig device-parameter arithmetic."""

import pytest

from repro.switchsim import SwitchConfig


def test_paper_defaults():
    config = SwitchConfig()
    assert config.num_stages == 20
    assert config.ingress_stages == 10
    # 1-KiB blocks over 256 KiB/stage -> 256 blocks (Section 4.1).
    assert config.blocks_per_stage == 256
    assert config.block_words == 256


def test_total_memory_sums_stages():
    config = SwitchConfig()
    assert config.total_memory_bytes == 20 * 65536 * 4


def test_ingress_split():
    config = SwitchConfig()
    assert config.is_ingress(1)
    assert config.is_ingress(10)
    assert not config.is_ingress(11)
    assert not config.is_ingress(20)
    with pytest.raises(ValueError):
        config.is_ingress(0)
    with pytest.raises(ValueError):
        config.is_ingress(21)


def test_logical_to_physical_mapping():
    config = SwitchConfig()
    assert config.physical_stage(1) == 1
    assert config.physical_stage(20) == 20
    assert config.physical_stage(21) == 1  # first recirculated stage
    assert config.physical_stage(45) == 5
    assert config.pass_of(1) == 1
    assert config.pass_of(20) == 1
    assert config.pass_of(21) == 2
    assert config.pass_of(41) == 3


def test_granularity_sweep():
    config = SwitchConfig()
    fine = config.with_granularity(256)
    assert fine.blocks_per_stage == 1024
    coarse = config.with_granularity(2048)
    assert coarse.blocks_per_stage == 128


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        SwitchConfig(num_stages=1)
    with pytest.raises(ValueError):
        SwitchConfig(ingress_stages=20)
    with pytest.raises(ValueError):
        SwitchConfig(block_bytes=6)  # not a whole number of words
    with pytest.raises(ValueError):
        SwitchConfig(words_per_stage=100, block_bytes=1024)  # block > stage
    with pytest.raises(ValueError):
        SwitchConfig(max_recirculations=-1)


def test_max_logical_stages_budget():
    config = SwitchConfig(max_recirculations=2)
    assert config.max_logical_stages == 60
