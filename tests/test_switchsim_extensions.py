"""Unit tests for extended runtimes (Section 7.1)."""

import pytest

from repro.switchsim import LatencyModel, SwitchConfig
from repro.switchsim.extensions import (
    L2_FORWARDING,
    RuntimeExtension,
    extend_config,
    extend_latency,
)


def test_l2_extension_matches_paper_figures():
    assert L2_FORWARDING.stages_consumed == 1
    assert L2_FORWARDING.tcam_overhead == pytest.approx(0.03)
    assert L2_FORWARDING.phv_overhead == pytest.approx(0.06)
    assert L2_FORWARDING.latency_overhead == pytest.approx(0.04)


def test_extend_config_removes_a_stage():
    base = SwitchConfig()
    extended = extend_config(base, L2_FORWARDING)
    assert extended.num_stages == 19
    assert extended.tcam_entries_per_stage == int(2048 * 0.97)
    assert extended.total_memory_bytes < base.total_memory_bytes


def test_extend_config_clamps_ingress():
    tiny = SwitchConfig(num_stages=4, ingress_stages=3)
    ext = RuntimeExtension(name="big", stages_consumed=1)
    extended = extend_config(tiny, ext)
    assert extended.ingress_stages < extended.num_stages


def test_extend_config_rejects_consuming_everything():
    with pytest.raises(ValueError):
        extend_config(
            SwitchConfig(num_stages=4, ingress_stages=2),
            RuntimeExtension(name="huge", stages_consumed=3),
        )


def test_extend_latency_increases_forwarding_time():
    base = LatencyModel()
    extended = extend_latency(base, L2_FORWARDING)
    assert extended.half_pipe_us == pytest.approx(base.half_pipe_us * 1.04)
    assert extended.echo_rtt_us() > base.echo_rtt_us()


def test_extended_runtime_still_runs_programs():
    """Active programs execute unchanged on the 19-stage runtime."""
    from repro.controller import ActiveRmtController
    from repro.switchsim import ActiveSwitch
    from tests.test_core_constraints import listing1_pattern

    switch = ActiveSwitch(extend_config(SwitchConfig(), L2_FORWARDING))
    controller = ActiveRmtController(switch)
    report = controller.admit(fid=1, pattern=listing1_pattern())
    assert report.success
    assert max(report.decision.regions) <= 19
