"""Tests for the recirculation-bandwidth governor (Section 7.2)."""

import pytest

from repro.isa import assemble
from repro.packets import ActivePacket, ControlFlags, MacAddress
from repro.switchsim import ActiveSwitch
from repro.switchsim.governor import RecirculationGovernor

CLIENT = MacAddress.from_host_id(1)
SERVER = MacAddress.from_host_id(2)


def test_non_recirculating_packets_always_admitted():
    governor = RecirculationGovernor(rate_per_second=1, burst=1)
    for _ in range(1000):
        assert governor.admit(fid=1, recirculations=0, now=0.0)
    assert governor.suppressed == 0


def test_burst_then_suppression():
    governor = RecirculationGovernor(rate_per_second=10, burst=3)
    assert governor.admit(1, 1, now=0.0)
    assert governor.admit(1, 1, now=0.0)
    assert governor.admit(1, 1, now=0.0)
    assert not governor.admit(1, 1, now=0.0)  # bucket drained
    assert governor.suppressed == 1


def test_tokens_refill_over_time():
    governor = RecirculationGovernor(rate_per_second=10, burst=5)
    for _ in range(5):
        governor.admit(1, 1, now=0.0)
    assert not governor.admit(1, 1, now=0.0)
    assert governor.admit(1, 1, now=0.5)  # 5 tokens accrued


def test_fids_are_isolated():
    governor = RecirculationGovernor(rate_per_second=1, burst=1)
    assert governor.admit(1, 1, now=0.0)
    assert not governor.admit(1, 1, now=0.0)
    assert governor.admit(2, 1, now=0.0)  # other tenant unaffected


def test_validation():
    with pytest.raises(ValueError):
        RecirculationGovernor(rate_per_second=0)
    with pytest.raises(ValueError):
        RecirculationGovernor(burst=-1)


def test_switch_suppresses_recirculation_hogs():
    """A 30-instruction (recirculating) program gets rate-limited; the
    suppressed packets are forwarded plain instead of executed."""
    switch = ActiveSwitch()
    switch.register_host(CLIENT, 1)
    switch.register_host(SERVER, 2)
    switch.governor = RecirculationGovernor(rate_per_second=1, burst=2)
    clock = {"now": 0.0}
    switch.clock = lambda: clock["now"]
    source = "\n".join(["RTS"] + ["NOP"] * 28 + ["RETURN"])
    program = list(assemble(source))

    returned = 0
    forwarded = 0
    for _ in range(10):
        packet = ActivePacket.program(
            src=CLIENT, dst=SERVER, fid=7, instructions=list(program)
        )
        outputs = switch.receive(packet, in_port=1)
        assert len(outputs) == 1
        if outputs[0].port == 1:  # RTS'd: the program executed
            returned += 1
        else:
            forwarded += 1
            assert not outputs[0].packet.has_flag(ControlFlags.FROM_SWITCH)
    assert returned == 2  # the burst allowance
    assert forwarded == 8
    assert switch.governor.suppressed == 8


def test_switch_governor_spares_short_programs():
    switch = ActiveSwitch()
    switch.register_host(CLIENT, 1)
    switch.register_host(SERVER, 2)
    switch.governor = RecirculationGovernor(rate_per_second=1, burst=1)
    program = list(assemble("RTS\nRETURN"))
    for _ in range(50):
        packet = ActivePacket.program(
            src=CLIENT, dst=SERVER, fid=7, instructions=list(program)
        )
        outputs = switch.receive(packet, in_port=1)
        assert outputs[0].port == 1  # never suppressed
