"""Integration tests for the pipeline interpreter.

These run real active programs (including Listing 1's cache query)
through the simulated pipeline with manually installed grants.
"""

import pytest

from repro.isa import assemble
from repro.packets import ActivePacket, MacAddress
from repro.switchsim import (
    PacketDisposition,
    Pipeline,
    StageGrant,
    SwitchConfig,
)

CLIENT = MacAddress.from_host_id(1)
SERVER = MacAddress.from_host_id(2)

CACHE_QUERY = """
    MAR_LOAD $2        ; bucket address in arg slot 2
    MEM_READ
    MBR_EQUALS_DATA_1
    CRET
    MEM_READ
    MBR_EQUALS_DATA_2
    CRET
    RTS
    MEM_READ
    MBR_STORE $0
    RETURN
"""


def _packet(program, args, fid=1):
    return ActivePacket.program(
        src=CLIENT, dst=SERVER, fid=fid, instructions=list(program), args=args
    )


def _grant_stages(pipeline, fid, stages, start=0, end=1024):
    for stage in stages:
        pipeline.stage(stage).table.install_grant(
            StageGrant(fid=fid, start=start, end=end)
        )


@pytest.fixture
def pipeline():
    return Pipeline(SwitchConfig())


def test_cache_query_hit(pipeline):
    program = assemble(CACHE_QUERY, name="cache-query")
    _grant_stages(pipeline, fid=1, stages=[2, 5, 9])
    # Pre-populate the bucket: key halves in stages 2 and 5, value in 9.
    bucket = 17
    pipeline.stage(2).registers.write(bucket, 0xAAAA0001)
    pipeline.stage(5).registers.write(bucket, 0xBBBB0002)
    pipeline.stage(9).registers.write(bucket, 0xCAFED00D)

    packet = _packet(program, args=[0xAAAA0001, 0xBBBB0002, bucket, 0])
    result = pipeline.execute(packet)

    assert result.disposition is PacketDisposition.RETURN_TO_SENDER
    assert result.packet.get_arg(0) == 0xCAFED00D  # value written to packet
    assert result.packet.eth.dst == CLIENT  # swapped by RTS
    assert result.passes == 1  # 11 instructions fit in one pass
    assert result.recirculations == 0


def test_cache_query_miss_forwards(pipeline):
    program = assemble(CACHE_QUERY, name="cache-query")
    _grant_stages(pipeline, fid=1, stages=[2, 5, 9])
    bucket = 17
    pipeline.stage(2).registers.write(bucket, 0xAAAA0001)
    pipeline.stage(5).registers.write(bucket, 0xBBBB0002)

    # Wrong first key half: CRET terminates at line 4; forwarded onward.
    packet = _packet(program, args=[0xDEAD0000, 0xBBBB0002, bucket, 0])
    result = pipeline.execute(packet)
    assert result.disposition is PacketDisposition.FORWARD
    assert result.packet.eth.dst == SERVER

    # Correct first half but wrong second: miss at line 7.
    packet = _packet(program, args=[0xAAAA0001, 0xDEAD0000, bucket, 0])
    result = pipeline.execute(packet)
    assert result.disposition is PacketDisposition.FORWARD


def test_memory_protection_denies_out_of_region(pipeline):
    program = assemble("MAR_LOAD $0\nMEM_READ\nRETURN")
    _grant_stages(pipeline, fid=1, stages=[2], start=0, end=100)
    packet = _packet(program, args=[100, 0, 0, 0])  # first invalid index
    result = pipeline.execute(packet)
    assert result.disposition is PacketDisposition.FAULT
    assert "denied" in result.phv.fault_reason
    assert pipeline.faults == 1


def test_memory_access_without_grant_faults(pipeline):
    program = assemble("MAR_LOAD $0\nMEM_WRITE\nRETURN")
    packet = _packet(program, args=[0, 0, 0, 0], fid=42)
    result = pipeline.execute(packet)
    assert result.disposition is PacketDisposition.FAULT


def test_isolation_between_fids(pipeline):
    """A FID can never read or write another FID's region."""
    program = assemble("MAR_LOAD $0\nMEM_WRITE\nRETURN")
    _grant_stages(pipeline, fid=1, stages=[2], start=0, end=100)
    _grant_stages(pipeline, fid=2, stages=[2], start=100, end=200)
    own = pipeline.execute(_packet(program, args=[150, 0, 0, 0], fid=2))
    assert own.disposition is PacketDisposition.FORWARD
    foreign = pipeline.execute(_packet(program, args=[50, 0, 0, 0], fid=2))
    assert foreign.disposition is PacketDisposition.FAULT


def test_long_program_recirculates(pipeline):
    # 25 NOPs + RETURN = 26 instructions -> 2 passes on a 20-stage pipe.
    source = "\n".join(["NOP"] * 25 + ["RETURN"])
    result = pipeline.execute(_packet(assemble(source), args=[]))
    assert result.disposition is PacketDisposition.FORWARD
    assert result.passes == 2
    assert result.recirculations == 1


def test_recirculation_budget_enforced():
    pipeline = Pipeline(SwitchConfig(max_recirculations=1))
    source = "\n".join(["NOP"] * 45 + ["RETURN"])  # needs 3 passes
    result = pipeline.execute(_packet(assemble(source), args=[]))
    assert result.disposition is PacketDisposition.FAULT
    assert "budget" in result.phv.fault_reason


def test_rts_in_ingress_is_free(pipeline):
    program = assemble("NOP\nNOP\nRTS\nRETURN")
    result = pipeline.execute(_packet(program, args=[]))
    assert result.disposition is PacketDisposition.RETURN_TO_SENDER
    assert result.recirculations == 0
    assert not result.phv.rts_at_egress


def test_rts_at_egress_costs_recirculation(pipeline):
    # Pad RTS past stage 10 into the egress half.
    program = assemble("\n".join(["NOP"] * 12 + ["RTS", "RETURN"]))
    result = pipeline.execute(_packet(program, args=[]))
    assert result.disposition is PacketDisposition.RETURN_TO_SENDER
    assert result.phv.rts_at_egress
    assert result.recirculations == 1


def test_branch_skips_until_label(pipeline):
    # MBR = 1 -> CJUMP taken -> the DROP in the skipped arm must not run.
    program = assemble(
        """
        MBR_LOAD $0
        CJUMP @keep
        DROP
        keep: NOP
        RETURN
        """
    )
    result = pipeline.execute(_packet(program, args=[1, 0, 0, 0]))
    assert result.disposition is PacketDisposition.FORWARD

    # MBR = 0 -> branch not taken -> DROP executes.
    result = pipeline.execute(_packet(program, args=[0, 0, 0, 0]))
    assert result.disposition is PacketDisposition.DROP


def test_skipped_instructions_still_consume_stages(pipeline):
    program = assemble(
        """
        MBR_LOAD $0
        CJUMP @end
        NOP
        NOP
        end: NOP
        RETURN
        """
    )
    result = pipeline.execute(_packet(program, args=[1, 0, 0, 0]))
    # All six headers were consumed even though two were skipped.
    assert result.phv.pc == 6
    assert result.executed_instructions == 4


def test_ujump_always_skips(pipeline):
    program = assemble(
        """
        UJUMP @end
        DROP
        end: NOP
        RETURN
        """
    )
    result = pipeline.execute(_packet(program, args=[]))
    assert result.disposition is PacketDisposition.FORWARD


def test_creti_returns_when_zero(pipeline):
    program = assemble("MBR_LOAD $0\nCRETI\nDROP\nRETURN")
    assert (
        pipeline.execute(_packet(program, args=[0, 0, 0, 0])).disposition
        is PacketDisposition.FORWARD
    )
    assert (
        pipeline.execute(_packet(program, args=[1, 0, 0, 0])).disposition
        is PacketDisposition.DROP
    )


def test_fork_creates_clone(pipeline):
    program = assemble("FORK\nNOP\nRETURN")
    result = pipeline.execute(_packet(program, args=[]))
    assert result.disposition is PacketDisposition.FORWARD
    assert len(result.clones) == 1
    clone = result.clones[0]
    assert clone.disposition is PacketDisposition.FORWARD
    # Cloned packets always recirculate (Section 3.1).
    assert clone.passes >= 2


def test_deactivated_fid_bypasses_execution(pipeline):
    program = assemble("MAR_LOAD $0\nMEM_WRITE\nRTS\nRETURN")
    _grant_stages(pipeline, fid=1, stages=[2])
    pipeline.deactivate_fid(1)
    result = pipeline.execute(_packet(program, args=[5, 0, 0, 0]))
    # Forwarded unprocessed: no RTS, no memory write.
    assert result.disposition is PacketDisposition.FORWARD
    assert pipeline.stage(2).registers.read(5) == 0
    pipeline.reactivate_fid(1)
    result = pipeline.execute(_packet(program, args=[5, 0, 0, 0]))
    assert result.disposition is PacketDisposition.RETURN_TO_SENDER


def test_hash_then_mask_offset_translation(pipeline):
    """Runtime address translation: HASH -> ADDR_MASK -> ADDR_OFFSET."""
    program = assemble(
        """
        MBR_LOAD $0
        COPY_HASHDATA_MBR
        HASH
        ADDR_MASK
        ADDR_OFFSET
        MEM_INCREMENT
        RETURN
        """
    )
    # Region of 256 words at [512, 768) in stage 6; mask/offset installed
    # by the controller so hashes land inside the region.
    for stage in (4, 5, 6):
        pipeline.stage(stage).table.install_grant(
            StageGrant(fid=1, start=512, end=768, mask=0xFF, offset=512)
        )
    result = pipeline.execute(_packet(program, args=[1234, 0, 0, 0]))
    assert result.disposition is PacketDisposition.FORWARD
    assert 512 <= result.phv.mar < 768
    assert pipeline.stage(6).registers.read(result.phv.mar) == 1


def test_executed_bit_set_for_shrinking(pipeline):
    program = assemble("NOP\nNOP\nRETURN")
    result = pipeline.execute(_packet(program, args=[]))
    assert all(instr.executed for instr in result.packet.instructions)


def test_instructions_beyond_return_not_executed(pipeline):
    program = assemble("RETURN\nDROP")
    result = pipeline.execute(_packet(program, args=[]))
    assert result.disposition is PacketDisposition.FORWARD
    assert not result.packet.instructions[1].executed
