"""Tests for the per-program decode/trace cache (the hot-path engine).

The contract under test: with the cache enabled, every execution is
byte-identical to the uncached interpreter -- same dispositions, same
PHV state, same emitted packets, same register contents -- and any
control-plane table rewrite (reallocation, withdrawal, or a direct
mutation) invalidates the affected entries before they can serve stale
decode state.
"""

import pytest

from repro.controller import ActiveRmtController
from repro.core import AllocationScheme
from repro.isa import assemble
from repro.packets import ActivePacket, MacAddress
from repro.packets.codec import encode_packet
from repro.switchsim import (
    ActiveSwitch,
    PacketDisposition,
    Pipeline,
    StageGrant,
    SwitchConfig,
    infer_recirculations,
    program_digest,
)

from tests.test_core_constraints import listing1_pattern

CLIENT = MacAddress.from_host_id(1)
SERVER = MacAddress.from_host_id(2)

CACHE_QUERY = """
    MAR_LOAD $2
    MEM_READ
    MBR_EQUALS_DATA_1
    CRET
    MEM_READ
    MBR_EQUALS_DATA_2
    CRET
    RTS
    MEM_READ
    MBR_STORE $0
    RETURN
"""


def _packet(program, args=None, fid=1):
    return ActivePacket.program(
        src=CLIENT, dst=SERVER, fid=fid, instructions=list(program), args=args or []
    )


def _grant_stages(pipeline, fid, stages, start=0, end=1024):
    for stage in stages:
        pipeline.stage(stage).table.install_grant(
            StageGrant(fid=fid, start=start, end=end)
        )


def _assert_identical(cached, cold):
    """Byte-identical ExecutionResults (clones included)."""
    assert cached.disposition is cold.disposition
    assert cached.phv == cold.phv
    assert cached.passes == cold.passes
    assert cached.recirculations == cold.recirculations
    assert cached.executed_instructions == cold.executed_instructions
    assert encode_packet(cached.packet) == encode_packet(cold.packet)
    assert len(cached.clones) == len(cold.clones)
    for sub_cached, sub_cold in zip(cached.clones, cold.clones):
        _assert_identical(sub_cached, sub_cold)


# ----------------------------------------------------------------------
# infer_recirculations
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "program_len,num_stages,expected",
    [
        (0, 20, 0),
        (1, 20, 0),
        (20, 20, 0),
        (21, 20, 1),
        (40, 20, 1),
        (41, 20, 2),
        (45, 20, 2),
        (11, 10, 1),
    ],
)
def test_infer_recirculations(program_len, num_stages, expected):
    assert infer_recirculations(program_len, num_stages) == expected


def test_infer_recirculations_matches_legacy_expression():
    for n in range(1, 101):
        for s in (4, 10, 20):
            assert infer_recirculations(n, s) == -(-n // s) - 1


def test_infer_recirculations_rejects_bad_stage_count():
    with pytest.raises(ValueError):
        infer_recirculations(10, 0)


def test_program_digest_ignores_executed_bit():
    fresh = list(assemble("NOP\nRETURN"))
    done = [instr.with_executed() for instr in fresh]
    assert program_digest(fresh) == program_digest(done)


# ----------------------------------------------------------------------
# Cache bookkeeping
# ----------------------------------------------------------------------


def test_repeat_program_hits_cache():
    pipeline = Pipeline(SwitchConfig())
    program = assemble("NOP\nRTS\nRETURN")
    pipeline.execute(_packet(program))
    pipeline.execute(_packet(program))
    stats = pipeline.program_cache.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 1
    assert stats["hit_rate"] == 0.5


def test_distinct_fids_do_not_share_entries():
    pipeline = Pipeline(SwitchConfig())
    program = assemble("NOP\nRETURN")
    pipeline.execute(_packet(program, fid=1))
    pipeline.execute(_packet(program, fid=2))
    assert pipeline.program_cache.stats()["misses"] == 2


def test_lru_eviction_bounds_entries():
    pipeline = Pipeline(SwitchConfig(program_cache_entries=2))
    programs = [
        assemble("\n".join(["NOP"] * n + ["RETURN"])) for n in (1, 2, 3)
    ]
    for program in programs:
        pipeline.execute(_packet(program))
    stats = pipeline.program_cache.stats()
    assert stats["entries"] == 2
    assert stats["evictions"] == 1
    # Oldest program was evicted; re-running it misses again.
    pipeline.execute(_packet(programs[0]))
    assert pipeline.program_cache.stats()["misses"] == 4


def test_zero_capacity_disables_cache():
    pipeline = Pipeline(SwitchConfig(program_cache_entries=0))
    assert pipeline.program_cache is None
    result = pipeline.execute(_packet(assemble("RTS\nRETURN")))
    assert result.disposition is PacketDisposition.RETURN_TO_SENDER


def test_invalidate_fid_flushes_only_that_fid():
    pipeline = Pipeline(SwitchConfig())
    program = assemble("NOP\nRETURN")
    pipeline.execute(_packet(program, fid=1))
    pipeline.execute(_packet(program, fid=2))
    assert pipeline.invalidate_program_cache(1) == 1
    assert len(pipeline.program_cache) == 1
    pipeline.execute(_packet(program, fid=2))
    assert pipeline.program_cache.stats()["hits"] == 1


def test_direct_table_mutation_caught_by_version_stamps():
    """Mutating a stage table behind the controller's back must not
    let a cached schedule serve the old grant."""
    pipeline = Pipeline(SwitchConfig())
    program = assemble("MAR_LOAD $0\nMEM_READ\nRETURN")
    _grant_stages(pipeline, fid=1, stages=[2], start=0, end=100)
    ok = pipeline.execute(_packet(program, args=[50, 0, 0, 0]))
    assert ok.disposition is PacketDisposition.FORWARD
    # Shrink the grant directly (no controller involved).
    pipeline.stage(2).table.remove_grant(1)
    pipeline.stage(2).table.install_grant(StageGrant(fid=1, start=0, end=10))
    denied = pipeline.execute(_packet(program, args=[50, 0, 0, 0]))
    assert denied.disposition is PacketDisposition.FAULT
    assert "denied" in denied.phv.fault_reason
    assert pipeline.program_cache.stats()["invalidations"] >= 1


# ----------------------------------------------------------------------
# Cached-vs-cold byte identity
# ----------------------------------------------------------------------

_SCENARIOS = [
    # (source, args, fid) -- exercises hits, misses, faults, protection,
    # translation, recirculation, branches, forks, and egress RTS.
    (CACHE_QUERY, [0xAAAA0001, 0xBBBB0002, 17, 0], 1),
    (CACHE_QUERY, [0xDEAD0000, 0xBBBB0002, 17, 0], 1),
    ("MAR_LOAD $0\nMEM_READ\nRETURN", [100, 0, 0, 0], 1),  # out of region
    ("MAR_LOAD $0\nMEM_WRITE\nRETURN", [0, 0, 0, 0], 42),  # no grant
    ("\n".join(["NOP"] * 25 + ["RETURN"]), [], 1),  # recirculates
    ("MBR_LOAD $0\nCJUMP @keep\nDROP\nkeep: NOP\nRETURN", [1, 0, 0, 0], 1),
    ("MBR_LOAD $0\nCJUMP @keep\nDROP\nkeep: NOP\nRETURN", [0, 0, 0, 0], 1),
    ("FORK\nNOP\nRETURN", [], 1),
    ("\n".join(["NOP"] * 12 + ["RTS", "RETURN"]), [], 1),  # egress RTS
    (
        "MBR_LOAD $0\nCOPY_HASHDATA_MBR\nHASH\nADDR_MASK\nADDR_OFFSET\n"
        "MEM_INCREMENT\nRETURN",
        [1234, 0, 0, 0],
        3,
    ),
]


def _seeded_pipeline(cache_entries):
    pipeline = Pipeline(SwitchConfig(program_cache_entries=cache_entries))
    _grant_stages(pipeline, fid=1, stages=[2, 5, 9], start=0, end=100)
    bucket = 17
    pipeline.stage(2).registers.write(bucket, 0xAAAA0001)
    pipeline.stage(5).registers.write(bucket, 0xBBBB0002)
    pipeline.stage(9).registers.write(bucket, 0xCAFED00D)
    for stage in (4, 5, 6):
        pipeline.stage(stage).table.install_grant(
            StageGrant(fid=3, start=512, end=768, mask=0xFF, offset=512)
        )
    return pipeline


def test_cached_execution_byte_identical_to_cold():
    warm = _seeded_pipeline(cache_entries=256)
    cold = _seeded_pipeline(cache_entries=0)
    # Two rounds: the second round on `warm` runs fully from cache.
    for _round in range(2):
        for source, args, fid in _SCENARIOS:
            program = assemble(source)
            warm_result = warm.execute(_packet(program, args=list(args), fid=fid))
            cold_result = cold.execute(_packet(program, args=list(args), fid=fid))
            _assert_identical(warm_result, cold_result)
    assert warm.program_cache.stats()["hits"] >= len(_SCENARIOS)
    # Register state diverged nowhere.
    for warm_stage, cold_stage in zip(warm.stages, cold.stages):
        assert warm_stage.registers._cells == cold_stage.registers._cells


# ----------------------------------------------------------------------
# Reallocation invalidation (the ISSUE's required test)
# ----------------------------------------------------------------------


def _controller_switch(cache_entries):
    switch = ActiveSwitch(SwitchConfig(program_cache_entries=cache_entries))
    switch.register_host(CLIENT, 1)
    switch.register_host(SERVER, 2)
    controller = ActiveRmtController(switch, scheme=AllocationScheme.FIRST_FIT)
    return switch, controller


def test_reallocation_flushes_cache_and_matches_cold_pipeline():
    """Rewriting a FID's tables (reallocation) must flush its cached
    schedules; post-realloc executions are byte-identical to a cold
    pipeline driven through the same history."""
    warm, warm_ctrl = _controller_switch(cache_entries=256)
    cold, cold_ctrl = _controller_switch(cache_entries=0)

    program = assemble(CACHE_QUERY, name="cache-query")
    probe = assemble("MAR_LOAD $0\nMEM_READ\nRETURN")

    for ctrl in (warm_ctrl, cold_ctrl):
        assert ctrl.admit(fid=1, pattern=listing1_pattern()).success

    # Populate the warm cache for fid 1 under the full-size grant.
    bucket = 17
    for switch in (warm, cold):
        switch.pipeline.stage(2).registers.write(bucket, 0xAAAA0001)
        switch.pipeline.stage(5).registers.write(bucket, 0xBBBB0002)
        switch.pipeline.stage(9).registers.write(bucket, 0xCAFED00D)
    args = [0xAAAA0001, 0xBBBB0002, bucket, 0]
    for _ in range(2):
        _assert_identical(
            warm.pipeline.execute(_packet(program, args=list(args))),
            cold.pipeline.execute(_packet(program, args=list(args))),
        )
    warm_stats = warm.pipeline.program_cache.stats()
    assert warm_stats["hits"] >= 1
    full_grant = warm.pipeline.stage(2).table.grant_for(1)

    # A same-pattern arrival under first-fit reallocates fid 1 (its
    # region is halved), rewriting every one of its table entries.
    for ctrl in (warm_ctrl, cold_ctrl):
        report = ctrl.admit(fid=50, pattern=listing1_pattern())
        assert report.success
        assert 1 in report.reallocated_fids

    after = warm.pipeline.program_cache.stats()
    assert after["invalidations"] > warm_stats["invalidations"]
    halved_grant = warm.pipeline.stage(2).table.grant_for(1)
    assert halved_grant.end < full_grant.end

    # The halved bound must be enforced on the very next packet: a
    # stale cached schedule would still admit this index.
    beyond = halved_grant.end + 5
    warm_denied = warm.pipeline.execute(_packet(probe, args=[beyond, 0, 0, 0]))
    cold_denied = cold.pipeline.execute(_packet(probe, args=[beyond, 0, 0, 0]))
    assert warm_denied.disposition is PacketDisposition.FAULT
    _assert_identical(warm_denied, cold_denied)

    # In-region traffic still matches byte for byte after the rewrite.
    for switch in (warm, cold):
        switch.pipeline.stage(2).registers.write(bucket, 0xAAAA0001)
        switch.pipeline.stage(5).registers.write(bucket, 0xBBBB0002)
        switch.pipeline.stage(9).registers.write(bucket, 0xCAFED00D)
    for _ in range(2):
        _assert_identical(
            warm.pipeline.execute(_packet(program, args=list(args))),
            cold.pipeline.execute(_packet(program, args=list(args))),
        )
    for warm_stage, cold_stage in zip(warm.pipeline.stages, cold.pipeline.stages):
        assert warm_stage.registers._cells == cold_stage.registers._cells


def test_withdrawal_flushes_cache():
    warm, controller = _controller_switch(cache_entries=256)
    assert controller.admit(fid=1, pattern=listing1_pattern()).success
    program = assemble(CACHE_QUERY)
    warm.pipeline.execute(_packet(program, args=[0, 0, 17, 0]))
    assert len(warm.pipeline.program_cache) == 1
    controller.withdraw(1)
    assert len(warm.pipeline.program_cache) == 0
    # Post-withdrawal, memory access faults (no grant) -- not stale OK.
    result = warm.pipeline.execute(
        _packet(assemble("MAR_LOAD $0\nMEM_READ\nRETURN"), args=[0, 0, 0, 0])
    )
    assert result.disposition is PacketDisposition.FAULT
