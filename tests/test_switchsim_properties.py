"""Property-based tests of the pipeline's core safety invariants."""

from hypothesis import given, settings, strategies as st

from repro.isa import Instruction, Opcode
from repro.packets import ActivePacket, ControlFlags, MacAddress, encode_packet, decode_packet
from repro.switchsim import Pipeline, StageGrant, SwitchConfig

CLIENT = MacAddress.from_host_id(1)
SERVER = MacAddress.from_host_id(2)

#: Opcodes a hostile program may combine (anything that manipulates MAR
#: or touches memory, plus control flow).
_HOSTILE_OPCODES = [
    Opcode.MAR_LOAD,
    Opcode.MBR_LOAD,
    Opcode.MBR2_LOAD,
    Opcode.COPY_MAR_MBR,
    Opcode.MAR_ADD_MBR,
    Opcode.MAR_ADD_MBR2,
    Opcode.MAR_MBR_ADD_MBR2,
    Opcode.BIT_AND_MAR_MBR,
    Opcode.MBR_NOT,
    Opcode.SWAP_MBR_MBR2,
    Opcode.HASH,
    Opcode.ADDR_MASK,
    Opcode.ADDR_OFFSET,
    Opcode.MEM_READ,
    Opcode.MEM_WRITE,
    Opcode.MEM_INCREMENT,
    Opcode.MEM_MINREAD,
    Opcode.MEM_MINREADINC,
    Opcode.NOP,
    Opcode.COPY_HASHDATA_MBR,
]


@st.composite
def hostile_programs(draw):
    ops = draw(st.lists(st.sampled_from(_HOSTILE_OPCODES), min_size=1, max_size=18))
    instructions = []
    for op in ops:
        operand = 0
        from repro.isa.opcodes import has_operand

        if has_operand(op):
            operand = draw(st.integers(0, 7))
        instructions.append(Instruction(op, operand=operand))
    instructions.append(Instruction(Opcode.RETURN))
    return instructions


@settings(max_examples=80, deadline=None)
@given(
    program=hostile_programs(),
    args=st.lists(st.integers(0, 0xFFFFFFFF), min_size=4, max_size=8),
)
def test_memory_protection_never_violated(program, args):
    """No program, however crafted, writes outside its granted region.

    fid 1 is granted [100, 200) in every stage; fid 2 owns [200, 300).
    Canary values in fid 2's region and in unallocated memory must
    survive any fid-1 program.
    """
    pipeline = Pipeline(SwitchConfig(words_per_stage=1024))
    for stage in pipeline.stages:
        stage.table.install_grant(
            StageGrant(fid=1, start=100, end=200, mask=63, offset=100)
        )
        stage.table.install_grant(StageGrant(fid=2, start=200, end=300))
        stage.registers.write(250, 0xD00D)  # fid 2's canary
        stage.registers.write(50, 0xBEEF)  # unallocated canary
    packet = ActivePacket.program(
        src=CLIENT, dst=SERVER, fid=1, instructions=list(program), args=list(args)
    )
    pipeline.execute(packet)
    for stage in pipeline.stages:
        assert stage.registers.read(250) == 0xD00D
        assert stage.registers.read(50) == 0xBEEF


@settings(max_examples=40, deadline=None)
@given(
    program=hostile_programs(),
    args=st.lists(st.integers(0, 0xFFFFFFFF), min_size=4, max_size=4),
)
def test_execution_always_terminates(program, args):
    """Execution consumes bounded passes (no infinite recirculation)."""
    config = SwitchConfig(max_recirculations=3)
    pipeline = Pipeline(config)
    packet = ActivePacket.program(
        src=CLIENT, dst=SERVER, fid=9, instructions=list(program), args=list(args)
    )
    result = pipeline.execute(packet)
    assert result.passes <= 1 + config.max_recirculations + 1


@settings(max_examples=40, deadline=None)
@given(n_nops=st.integers(1, 25))
def test_shrinking_reduces_wire_size(n_nops):
    """Executed instructions are discarded by the deparser, so active
    packets shrink after execution (Section 3.1)."""
    pipeline = Pipeline(SwitchConfig())
    instructions = [Instruction(Opcode.NOP)] * n_nops + [
        Instruction(Opcode.RETURN)
    ]
    packet = ActivePacket.program(
        src=CLIENT, dst=SERVER, fid=1, instructions=instructions
    )
    before = len(encode_packet(packet, shrink=False))
    result = pipeline.execute(packet)
    after = len(encode_packet(result.packet, shrink=True))
    assert after < before
    # Shrunk packets still decode cleanly.
    decoded = decode_packet(encode_packet(result.packet, shrink=True))
    assert all(i.executed for i in result.packet.instructions)
    assert len(decoded.instructions) == 0  # everything executed


def test_no_shrink_flag_preserves_size():
    pipeline = Pipeline(SwitchConfig())
    instructions = [Instruction(Opcode.NOP)] * 5 + [Instruction(Opcode.RETURN)]
    packet = ActivePacket.program(
        src=CLIENT,
        dst=SERVER,
        fid=1,
        instructions=instructions,
        flags=ControlFlags.NO_SHRINK,
    )
    before = len(encode_packet(packet, shrink=False))
    result = pipeline.execute(packet)
    after = len(encode_packet(result.packet, shrink=True))
    assert after == before
