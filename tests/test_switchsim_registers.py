"""Unit + property tests for register arrays and stateful ALU actions."""

import pytest
from hypothesis import given, strategies as st

from repro.switchsim import RegisterArray, RegisterFault


def test_read_write_round_trip():
    regs = RegisterArray(16)
    regs.write(3, 0xABCD)
    assert regs.read(3) == 0xABCD
    assert regs.read(0) == 0  # zero-initialized


def test_write_wraps_32_bits():
    regs = RegisterArray(4)
    regs.write(0, 0x1_0000_0001)
    assert regs.read(0) == 1


def test_increment_returns_new_value():
    regs = RegisterArray(4)
    assert regs.increment(2) == 1
    assert regs.increment(2) == 2
    assert regs.increment(2, amount=10) == 12


def test_increment_wraps():
    regs = RegisterArray(2)
    regs.write(0, 0xFFFFFFFF)
    assert regs.increment(0) == 0


def test_min_read():
    regs = RegisterArray(4)
    regs.write(1, 100)
    assert regs.min_read(1, 50) == 50
    assert regs.min_read(1, 150) == 100


def test_min_read_increment_semantics():
    # Appendix B.1: counter incremented, count -> MBR, min(count, MBR2)
    regs = RegisterArray(4)
    regs.write(0, 5)
    count, running_min = regs.min_read_increment(0, value=3)
    assert count == 6
    assert running_min == 3
    count, running_min = regs.min_read_increment(0, value=100)
    assert count == 7
    assert running_min == 7


def test_out_of_bounds_faults():
    regs = RegisterArray(4)
    with pytest.raises(RegisterFault):
        regs.read(4)
    with pytest.raises(RegisterFault):
        regs.write(-1, 0)
    with pytest.raises(RegisterFault):
        regs.increment(100)


def test_snapshot_and_load():
    regs = RegisterArray(8)
    for i in range(8):
        regs.write(i, i * 10)
    snap = regs.snapshot(2, 6)
    assert snap == [20, 30, 40, 50]
    regs.load(0, [7, 8])
    assert regs.read(0) == 7
    assert regs.read(1) == 8


def test_snapshot_bad_range_rejected():
    regs = RegisterArray(8)
    with pytest.raises(RegisterFault):
        regs.snapshot(6, 2)
    with pytest.raises(RegisterFault):
        regs.snapshot(0, 9)


def test_clear_region():
    regs = RegisterArray(8)
    regs.write(3, 9)
    regs.write(4, 9)
    regs.clear(3, 5)
    assert regs.read(3) == 0
    assert regs.read(4) == 0


def test_stats_count_data_plane_ops():
    regs = RegisterArray(4)
    regs.read(0)
    regs.write(1, 2)
    regs.min_read(0, 5)
    reads, writes = regs.stats
    assert reads == 2
    assert writes == 1


@given(
    ops=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 0xFFFFFFFF)), max_size=50
    )
)
def test_register_array_matches_dict_model(ops):
    """Property: the array behaves like a plain dict of 32-bit cells."""
    regs = RegisterArray(16)
    model = {}
    for index, value in ops:
        regs.write(index, value)
        model[index] = value & 0xFFFFFFFF
    for index, expected in model.items():
        assert regs.read(index) == expected
