"""Unit tests for the top-level switch: forwarding, digests, latency."""

import pytest

from repro.isa import assemble
from repro.packets import (
    AccessConstraintEntry,
    ActivePacket,
    AllocationRequestHeader,
    ControlFlags,
    MacAddress,
    PacketType,
)
from repro.switchsim import ActiveSwitch, LatencyModel, SwitchConfig

CLIENT = MacAddress.from_host_id(1)
SERVER = MacAddress.from_host_id(2)


@pytest.fixture
def switch():
    sw = ActiveSwitch()
    sw.register_host(CLIENT, 1)
    sw.register_host(SERVER, 2)
    return sw


def _program_packet(source, args=None, fid=1):
    return ActivePacket.program(
        src=CLIENT,
        dst=SERVER,
        fid=fid,
        instructions=list(assemble(source)),
        args=args or [],
    )


def test_forwarding_to_registered_port(switch):
    outputs = switch.receive(_program_packet("NOP\nRETURN"), in_port=1)
    assert len(outputs) == 1
    assert outputs[0].port == 2


def test_rts_goes_back_out_arrival_port(switch):
    outputs = switch.receive(_program_packet("RTS\nRETURN"), in_port=1)
    assert len(outputs) == 1
    assert outputs[0].port == 1
    assert outputs[0].packet.eth.dst == CLIENT
    assert outputs[0].packet.has_flag(ControlFlags.FROM_SWITCH)


def test_unknown_destination_dropped(switch):
    stranger = MacAddress.from_host_id(99)
    packet = ActivePacket.program(
        src=CLIENT, dst=stranger, fid=1, instructions=list(assemble("NOP\nRETURN"))
    )
    assert switch.receive(packet, in_port=1) == []


def test_alloc_request_digested_not_forwarded(switch):
    request = AllocationRequestHeader(
        program_length=11,
        accesses=(AccessConstraintEntry(2, 1, 0),),
        ingress_bound_position=8,
    )
    packet = ActivePacket.alloc_request(src=CLIENT, dst=SERVER, fid=5, request=request)
    assert switch.receive(packet, in_port=1) == []
    assert switch.digests_pending == 1
    drained = switch.poll_digests()
    assert len(drained) == 1
    assert drained[0].ptype == PacketType.ALLOC_REQUEST
    assert switch.digests_pending == 0


def test_control_packet_digested(switch):
    packet = ActivePacket.control(
        src=CLIENT, dst=SERVER, fid=5, flags=ControlFlags.SNAPSHOT_COMPLETE
    )
    switch.receive(packet, in_port=1)
    assert switch.digests_pending == 1


def test_poll_digests_respects_limit(switch):
    for _ in range(3):
        switch.receive(
            ActivePacket.control(src=CLIENT, dst=SERVER, fid=1, flags=0), in_port=1
        )
    assert len(switch.poll_digests(limit=2)) == 2
    assert switch.digests_pending == 1


def test_inject_controller_packet(switch):
    from repro.packets import AllocationResponseHeader

    packet = ActivePacket.alloc_response(
        src=SERVER, dst=CLIENT, fid=5, response=AllocationResponseHeader.empty()
    )
    outputs = switch.inject(packet)
    assert len(outputs) == 1
    assert outputs[0].port == 1


def test_port_stats_counted(switch):
    switch.receive(_program_packet("NOP\nRETURN"), in_port=1)
    assert switch.port_stats[1].rx_packets == 1
    assert switch.port_stats[2].tx_packets == 1
    assert switch.port_stats[1].rx_bytes > 0


def test_register_host_rejects_bad_port(switch):
    with pytest.raises(ValueError):
        switch.register_host(CLIENT, 1000)


def test_latency_grows_with_program_length(switch):
    """Figure 8b shape: longer programs -> strictly higher RTT."""
    model = LatencyModel()
    config = SwitchConfig()
    rtts = []
    for n in (10, 20, 30):
        # The paper's probe programs are NOPs plus an RTS; the compiler
        # maps the RTS to the ingress pipeline (Section 6.2).
        source = "\n".join(["RTS"] + ["NOP"] * (n - 2) + ["RETURN"])
        outputs = switch.receive(_program_packet(source), in_port=1)
        assert outputs, f"{n}-instruction program should be returned"
        rtts.append(model.rtt_us(outputs[0].result, config))
    assert rtts[0] < rtts[1] < rtts[2]
    # All active RTTs exceed the echo baseline.
    assert all(rtt > model.echo_rtt_us() for rtt in rtts)


def test_latency_30_instructions_recirculates(switch):
    source = "\n".join(["RTS"] + ["NOP"] * 28 + ["RETURN"])
    outputs = switch.receive(_program_packet(source), in_port=1)
    assert outputs[0].result.passes == 2


# ----------------------------------------------------------------------
# stats() schema and perf-counter lifecycle
# ----------------------------------------------------------------------

#: The pinned stats() key schema.  Exporters and dashboards key off
#: these names; changing them is a breaking change that must be made
#: deliberately (update this list AND the consumers).
STATS_SCHEMA = [
    "batched_packets",
    "batches",
    "digested",
    "digests_delivered",
    "digests_pending",
    "dropped",
    "elapsed_seconds",
    "faulted",
    "forwarded",
    "governor_suppressed",
    "packets",
    "packets_per_second",
    "pipeline",
    "plain_forwarded",
    "program_cache",
    "programs",
    "returned",
    "suppressed",
]


def test_stats_key_schema_is_stable(switch):
    switch.receive(_program_packet("NOP\nRETURN"), in_port=1)
    stats = switch.stats()
    assert sorted(stats) == STATS_SCHEMA
    # Nested sections are pinned too.
    assert sorted(stats["pipeline"]) == [
        "drops",
        "faults",
        "total_recirculations",
    ]
    assert sorted(stats["program_cache"]) == [
        "capacity",
        "entries",
        "evictions",
        "hit_rate",
        "hits",
        "invalidations",
        "misses",
    ]


def test_stats_schema_identical_with_cache_disabled():
    cached = ActiveSwitch(SwitchConfig())
    uncached = ActiveSwitch(SwitchConfig(program_cache_entries=0))
    assert sorted(cached.stats()) == sorted(uncached.stats())
    assert isinstance(uncached.stats()["program_cache"], dict)
    assert uncached.stats()["program_cache"]["capacity"] == 0


def test_perf_counters_reset(switch):
    switch.receive(_program_packet("NOP\nRETURN"), in_port=1)
    switch.receive(_program_packet("RTS\nRETURN"), in_port=1)
    perf = switch.perf
    assert perf.packets == 2
    assert perf.elapsed_seconds >= 0.0
    perf.reset()
    assert perf.packets == 0
    assert perf.forwarded == 0
    assert perf.returned == 0
    assert perf.elapsed_seconds == 0.0
    assert perf.packets_per_second == 0.0
    # A fresh window starts cleanly after the reset.
    switch.receive(_program_packet("NOP\nRETURN"), in_port=1)
    assert perf.packets == 1
    snapshot = perf.snapshot()
    assert snapshot["packets"] == 1
    assert isinstance(snapshot["packets"], int)
    assert isinstance(snapshot["packets_per_second"], float)
