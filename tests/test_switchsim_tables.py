"""Unit + property tests for match tables, grants, and TCAM accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.switchsim import StageGrant, StageTable, TcamCapacityError, range_to_prefixes


def test_range_to_prefixes_exact_block():
    # An aligned power-of-two region is a single TCAM entry.
    assert range_to_prefixes(0, 1024) == [(0, 22)]
    assert range_to_prefixes(1024, 2048) == [(1024, 22)]


def test_range_to_prefixes_empty():
    assert range_to_prefixes(5, 5) == []


def test_range_to_prefixes_unaligned():
    prefixes = range_to_prefixes(3, 17)
    # Reconstruct and verify exact coverage.
    covered = set()
    for value, plen in prefixes:
        size = 1 << (32 - plen)
        assert value % size == 0  # prefix alignment
        covered.update(range(value, value + size))
    assert covered == set(range(3, 17))


@given(
    start=st.integers(0, 4096),
    length=st.integers(0, 4096),
)
def test_range_to_prefixes_cover_property(start, length):
    end = start + length
    covered = []
    for value, plen in range_to_prefixes(start, end):
        size = 1 << (32 - plen)
        assert value % size == 0
        covered.append((value, value + size))
    covered.sort()
    # Prefixes tile the range exactly, in order, without overlap.
    cursor = start
    for lo, hi in covered:
        assert lo == cursor
        cursor = hi
    assert cursor == end


def test_grant_allows_only_its_region():
    grant = StageGrant(fid=1, start=100, end=200)
    assert grant.allows(100)
    assert grant.allows(199)
    assert not grant.allows(200)
    assert not grant.allows(99)
    assert grant.size == 100


def test_grant_rejects_inverted_region():
    with pytest.raises(ValueError):
        StageGrant(fid=1, start=10, end=5)


def test_table_install_and_authorize():
    table = StageTable(tcam_capacity=64)
    table.install_grant(StageGrant(fid=7, start=0, end=1024))
    assert table.authorize(7, 0)
    assert table.authorize(7, 1023)
    assert not table.authorize(7, 1024)
    assert not table.authorize(8, 0)  # other FIDs denied


def test_table_replace_grant_frees_tcam():
    table = StageTable(tcam_capacity=2)
    table.install_grant(StageGrant(fid=1, start=0, end=1024))
    assert table.tcam_used == 1
    table.install_grant(StageGrant(fid=1, start=1024, end=2048))
    assert table.tcam_used == 1
    assert not table.authorize(1, 0)
    assert table.authorize(1, 1024)


def test_table_capacity_enforced():
    table = StageTable(tcam_capacity=1)
    table.install_grant(StageGrant(fid=1, start=0, end=1024))
    with pytest.raises(TcamCapacityError):
        # [1024, 1024+3*256) needs multiple prefixes.
        table.install_grant(StageGrant(fid=2, start=1024, end=1024 + 768))
    # Failed install must not leak TCAM accounting.
    assert table.tcam_used == 1


def test_remove_grant_frees_capacity():
    table = StageTable(tcam_capacity=1)
    table.install_grant(StageGrant(fid=1, start=0, end=1024))
    removed = table.remove_grant(1)
    assert removed is not None
    assert table.tcam_used == 0
    assert table.remove_grant(1) is None  # idempotent
    table.install_grant(StageGrant(fid=2, start=0, end=1024))


def test_fids_listing():
    table = StageTable(tcam_capacity=16)
    table.install_grant(StageGrant(fid=3, start=0, end=256))
    table.install_grant(StageGrant(fid=1, start=256, end=512))
    assert table.fids == [1, 3]


@given(start=st.integers(0, 1 << 16), length=st.integers(1, 1 << 12))
def test_grant_tcam_cost_positive(start, length):
    grant = StageGrant(fid=1, start=start, end=start + length)
    assert grant.tcam_cost() >= 1
    # Worst case for a W-bit range is 2W-2 entries; our ranges are far
    # smaller because allocations are block-aligned in practice.
    assert grant.tcam_cost() <= 62
