"""Tests for repro.telemetry: registry, traces, sampling, exporters.

Covers the registry's instrument semantics (counter monotonicity,
histogram bucket boundaries, gauge set/add, label identity), the trace
ring buffer's eviction behavior, sampling determinism under a seeded
RNG, and both exporters -- including a golden-file comparison and a
line-by-line Prometheus text-format validator that the integration
tests reuse against real instrumented runs.
"""

import json
import math
import re

import pytest

from repro import telemetry
from repro.telemetry import (
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    PacketSampler,
    PipelineTracer,
    TraceBuffer,
    json_snapshot,
    prometheus_text,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


# ----------------------------------------------------------------------
# Counter semantics
# ----------------------------------------------------------------------


def test_counter_monotonic(registry):
    counter = registry.counter("requests_total")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.value == 5


def test_counter_get_or_create_identity(registry):
    assert registry.counter("x_total") is registry.counter("x_total")


def test_counter_labels_create_distinct_series(registry):
    a = registry.counter("packets_total", fid=1)
    b = registry.counter("packets_total", fid=2)
    assert a is not b
    a.inc(3)
    b.inc(7)
    snap = registry.snapshot()
    assert snap["counters"]['packets_total{fid="1"}'] == 3
    assert snap["counters"]['packets_total{fid="2"}'] == 7


def test_instrument_type_conflict_raises(registry):
    registry.counter("thing")
    with pytest.raises(TypeError):
        registry.gauge("thing")
    with pytest.raises(TypeError):
        registry.histogram("thing")


# ----------------------------------------------------------------------
# The labels= mapping form (device-labeled fleet series)
# ----------------------------------------------------------------------


def test_labels_mapping_is_equivalent_to_kwargs(registry):
    via_mapping = registry.counter("requests_total", labels={"device": "sw0"})
    via_kwargs = registry.counter("requests_total", device="sw0")
    assert via_mapping is via_kwargs


def test_labels_mapping_merges_with_kwargs(registry):
    counter = registry.counter(
        "requests_total", labels={"device": "sw1"}, kind="admit"
    )
    counter.inc()
    snap = registry.snapshot()
    assert (
        snap["counters"]['requests_total{device="sw1",kind="admit"}'] == 1
    )


def test_conflicting_duplicate_label_raises(registry):
    with pytest.raises(ValueError, match="device"):
        registry.counter(
            "requests_total", labels={"device": "sw0"}, device="sw1"
        )
    # Agreeing duplicates are fine (the merge is a no-op).
    counter = registry.counter(
        "agree_total", labels={"device": "sw0"}, device="sw0"
    )
    assert counter is registry.counter("agree_total", device="sw0")


def test_gauge_and_histogram_accept_labels(registry):
    registry.gauge("shard_util", labels={"device": "sw2"}).set(0.5)
    registry.histogram(
        "lat", buckets=(1.0,), labels={"device": "sw2"}
    ).observe(0.2)
    snap = registry.snapshot()
    assert snap["gauges"]['shard_util{device="sw2"}'] == 0.5
    assert snap["histograms"]['lat{device="sw2"}']["count"] == 1


def test_device_labels_render_in_prometheus_text(registry):
    for device in ("sw1", "sw0"):
        registry.counter(
            "fleet_total", help="Per-device series", labels={"device": device}
        ).inc()
    text = prometheus_text(registry)
    assert 'fleet_total{device="sw0"} 1' in text
    assert 'fleet_total{device="sw1"} 1' in text
    assert_valid_prometheus(text)


def test_null_registry_accepts_labels_form():
    null = NullRegistry()
    null.counter("x_total", labels={"device": "sw0"}).inc()
    null.gauge("g", labels={"device": "sw0"}).set(1)
    null.histogram("h", labels={"device": "sw0"}).observe(1.0)
    assert null.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


# ----------------------------------------------------------------------
# Gauge semantics
# ----------------------------------------------------------------------


def test_gauge_set_and_add(registry):
    gauge = registry.gauge("queue_depth")
    gauge.set(10)
    assert gauge.value == 10
    gauge.add(5)
    assert gauge.value == 15
    gauge.add(-20)
    assert gauge.value == -5  # gauges may go negative
    gauge.set(0)
    assert gauge.value == 0


# ----------------------------------------------------------------------
# Histogram semantics
# ----------------------------------------------------------------------


def test_histogram_bucket_boundaries(registry):
    hist = registry.histogram("latency", buckets=(1.0, 2.0, 4.0))
    # 'le' semantics: a value equal to a bound lands in that bucket.
    hist.observe(1.0)
    hist.observe(1.5)
    hist.observe(2.0)
    hist.observe(4.0)
    hist.observe(100.0)  # overflow -> +Inf bucket
    assert hist.bucket_counts == [1, 2, 1, 1]
    assert hist.count == 5
    assert hist.sum == pytest.approx(108.5)


def test_histogram_rejects_bad_buckets(registry):
    with pytest.raises(ValueError):
        registry.histogram("bad", buckets=())
    with pytest.raises(ValueError):
        registry.histogram("bad2", buckets=(1.0, 1.0))
    with pytest.raises(ValueError):
        registry.histogram("bad3", buckets=(2.0, 1.0))


def test_histogram_percentiles_interpolate(registry):
    hist = registry.histogram("t", buckets=(10.0, 20.0, 40.0))
    for _ in range(50):
        hist.observe(5.0)  # first bucket
    for _ in range(50):
        hist.observe(15.0)  # second bucket
    # p50 sits at the first bucket's upper edge.
    assert hist.quantile(0.50) == pytest.approx(10.0)
    # p95 interpolates inside (10, 20].
    assert 10.0 < hist.quantile(0.95) <= 20.0
    summary = hist.summary()
    assert summary["count"] == 100
    assert summary["mean"] == pytest.approx(10.0)
    assert set(summary) == {"count", "sum", "mean", "p50", "p95", "p99"}


def test_histogram_percentiles_empty_and_overflow(registry):
    hist = registry.histogram("t", buckets=(1.0, 2.0))
    assert math.isnan(hist.quantile(0.5))
    hist.observe(50.0)  # only observation is in +Inf
    # Clamps to the highest finite bound, like histogram_quantile.
    assert hist.quantile(0.99) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


# ----------------------------------------------------------------------
# Null registry and the process default
# ----------------------------------------------------------------------


def test_null_registry_is_inert():
    null = NullRegistry()
    assert null.enabled is False
    counter = null.counter("anything", fid=9)
    counter.inc(100)
    null.gauge("g").set(5)
    null.histogram("h").observe(1.0)
    assert null.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
    assert prometheus_text(null) == ""


def test_process_default_registry_roundtrip():
    assert telemetry.get_registry() is NULL_REGISTRY
    registry = MetricsRegistry()
    previous = telemetry.set_registry(registry)
    try:
        assert previous is NULL_REGISTRY
        assert telemetry.get_registry() is registry
        assert telemetry.resolve(None) is registry
        other = MetricsRegistry()
        assert telemetry.resolve(other) is other
    finally:
        telemetry.set_registry(None)
    assert telemetry.get_registry() is NULL_REGISTRY


def test_collectors_run_before_snapshot(registry):
    state = {"depth": 7}
    registry.register_collector(
        lambda reg: reg.gauge("depth").set(state["depth"])
    )
    assert registry.snapshot()["gauges"]["depth"] == 7
    state["depth"] = 3
    assert registry.snapshot()["gauges"]["depth"] == 3


# ----------------------------------------------------------------------
# Trace buffer and sampling
# ----------------------------------------------------------------------


def test_trace_ring_buffer_eviction():
    buffer = TraceBuffer(capacity=3)
    for index in range(5):
        buffer.record("event", seq=index)
    assert len(buffer) == 3
    assert buffer.recorded == 5
    assert buffer.dropped == 2
    # Oldest first; the two earliest events were evicted.
    assert [event.attrs["seq"] for event in buffer.events()] == [2, 3, 4]
    snap = buffer.snapshot()
    assert snap[0]["attrs"]["seq"] == 2
    assert snap[-1]["name"] == "event"


def test_trace_span_measures_duration():
    buffer = TraceBuffer(capacity=8)
    with buffer.span("work", fid=1) as attrs:
        attrs["extra"] = "late"
    (event,) = buffer.events()
    assert event.name == "work"
    assert event.duration_s >= 0.0
    assert event.attrs == {"fid": 1, "extra": "late"}


def test_trace_buffer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        TraceBuffer(capacity=0)


def test_sampler_deterministic_under_seed():
    first = PacketSampler(rate=0.5, seed=1234)
    second = PacketSampler(rate=0.5, seed=1234)
    decisions_a = [first.should_sample() for _ in range(200)]
    decisions_b = [second.should_sample() for _ in range(200)]
    assert decisions_a == decisions_b
    assert any(decisions_a) and not all(decisions_a)
    # A different seed picks different packets.
    third = PacketSampler(rate=0.5, seed=99)
    assert [third.should_sample() for _ in range(200)] != decisions_a


def test_sampler_rate_edges():
    assert not any(
        PacketSampler(rate=0.0, seed=7).should_sample() for _ in range(100)
    )
    assert all(
        PacketSampler(rate=1.0, seed=7).should_sample() for _ in range(100)
    )
    with pytest.raises(ValueError):
        PacketSampler(rate=1.5)
    with pytest.raises(ValueError):
        PacketSampler(rate=-0.1)


# ----------------------------------------------------------------------
# Prometheus exposition: validator + golden output
# ----------------------------------------------------------------------

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABELS = r'\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*")*\}'
_VALUE = r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)"
_SAMPLE_RE = re.compile(rf"^{_METRIC_NAME}({_LABELS})? {_VALUE}$")
_HELP_RE = re.compile(rf"^# HELP {_METRIC_NAME} [^\n]*$")
_TYPE_RE = re.compile(rf"^# TYPE {_METRIC_NAME} (counter|gauge|histogram)$")


def assert_valid_prometheus(text: str) -> None:
    """Line-by-line validation of Prometheus text exposition format.

    Checks every line parses, every sample's family has a preceding
    # TYPE declaration, and histogram bucket series are cumulative and
    end with +Inf.
    """
    typed = {}
    bucket_series = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            assert _HELP_RE.match(line), f"line {lineno}: bad HELP: {line!r}"
            continue
        if line.startswith("# TYPE "):
            assert _TYPE_RE.match(line), f"line {lineno}: bad TYPE: {line!r}"
            _, _, name, mtype = line.split(" ")
            assert name not in typed, f"line {lineno}: duplicate TYPE for {name}"
            typed[name] = mtype
            continue
        assert not line.startswith("#"), f"line {lineno}: bad comment: {line!r}"
        assert _SAMPLE_RE.match(line), f"line {lineno}: bad sample: {line!r}"
        name = re.match(_METRIC_NAME, line).group(0)
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in typed or family in typed, (
            f"line {lineno}: sample {name} before its TYPE declaration"
        )
        if name.endswith("_bucket"):
            series_key = re.sub(r'le="[^"]*",?', "", line.split(" ")[0])
            value = float(line.rsplit(" ", 1)[1])
            history = bucket_series.setdefault(series_key, [])
            if history:
                assert value >= history[-1], (
                    f"line {lineno}: non-cumulative bucket: {line!r}"
                )
            history.append(value)
            if 'le="+Inf"' not in line:
                assert "le=" in line, f"line {lineno}: bucket missing le"
    assert typed, "exposition must declare at least one metric family"


def test_prometheus_golden_output():
    registry = MetricsRegistry()
    registry.counter(
        "packets_total", help="Packets seen", fid=1
    ).inc(3)
    registry.counter("packets_total", fid=2).inc(1)
    registry.gauge("queue_depth", help="Digest queue depth").set(4)
    hist = registry.histogram(
        "alloc_seconds", buckets=(0.1, 1.0), help="Alloc latency"
    )
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    expected = "\n".join(
        [
            "# HELP alloc_seconds Alloc latency",
            "# TYPE alloc_seconds histogram",
            'alloc_seconds_bucket{le="0.1"} 1',
            'alloc_seconds_bucket{le="1"} 2',
            'alloc_seconds_bucket{le="+Inf"} 3',
            "alloc_seconds_sum 5.55",
            "alloc_seconds_count 3",
            "# HELP packets_total Packets seen",
            "# TYPE packets_total counter",
            'packets_total{fid="1"} 3',
            'packets_total{fid="2"} 1',
            "# HELP queue_depth Digest queue depth",
            "# TYPE queue_depth gauge",
            "queue_depth 4",
        ]
    ) + "\n"
    text = prometheus_text(registry)
    assert text == expected
    assert_valid_prometheus(text)


def test_json_snapshot_shape(registry):
    registry.counter("c_total").inc(2)
    registry.histogram("h", buckets=(1.0,)).observe(0.5)
    buffer = TraceBuffer(capacity=4)
    buffer.record("evt", fid=1)
    data = json_snapshot(registry, trace=buffer)
    # Must round-trip through JSON unchanged.
    rehydrated = json.loads(json.dumps(data))
    assert rehydrated["counters"]["c_total"] == 2
    hist = rehydrated["histograms"]["h"]
    assert hist["count"] == 1
    assert hist["buckets"] == {"1.0": 1, "+Inf": 0}
    assert rehydrated["traces"]["recorded"] == 1
    assert rehydrated["traces"]["events"][0]["attrs"]["fid"] == 1
