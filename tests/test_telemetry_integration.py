"""End-to-end telemetry: instrumented planes, exporters, CLI flag.

Drives real traffic and real admissions through a switch + controller
pair wired to one recording registry, then checks that the acceptance
surface holds: allocation-latency percentiles, per-FID packet
counters, and admission-outcome counts all appear in the JSON
snapshot, and the Prometheus exposition passes the line-format
validator.  Also exercises the experiments CLI's ``--stats-out``.
"""

import json

from repro import telemetry
from repro.apps.base import EXEMPLAR_APPS
from repro.controller.controller import ActiveRmtController
from repro.isa import assemble
from repro.packets import ActivePacket, MacAddress
from repro.switchsim import ActiveSwitch, StageGrant, SwitchConfig
from repro.telemetry import (
    MetricsRegistry,
    PipelineTracer,
    json_snapshot,
    prometheus_text,
)

from tests.test_telemetry import assert_valid_prometheus

CLIENT = MacAddress.from_host_id(1)
SERVER = MacAddress.from_host_id(2)

PROGRAM = assemble("MAR_LOAD $2\nMEM_READ\nRTS\nRETURN")
LONG_PROGRAM = assemble(
    "\n".join(["MAR_LOAD $2"] + ["NOP"] * 22 + ["RTS", "RETURN"])
)


def _instrumented_switch(registry, tracer=None):
    switch = ActiveSwitch(
        SwitchConfig(), telemetry=registry, tracer=tracer
    )
    switch.register_host(CLIENT, 1)
    switch.register_host(SERVER, 2)
    for fid in (1, 2):
        for stage in range(1, switch.config.num_stages + 1):
            switch.pipeline.stage(stage).table.install_grant(
                StageGrant(fid=fid, start=0, end=1024, mask=0xFF, offset=0)
            )
    return switch


def _packet(fid, program=PROGRAM):
    return ActivePacket.program(
        src=CLIENT,
        dst=SERVER,
        fid=fid,
        instructions=list(program),
        args=[0, 0, 17, 0],
    )


def test_instrumented_run_snapshot_and_exposition():
    registry = MetricsRegistry()
    tracer = PipelineTracer(sample_rate=1.0, seed=7, capacity=64)
    switch = _instrumented_switch(registry, tracer)
    controller = ActiveRmtController(switch, telemetry=registry)

    # Data path: scalar and batched, two FIDs, one recirculating flow.
    switch.receive(_packet(1), in_port=1)
    switch.receive_batch([_packet(1), _packet(2), _packet(2, LONG_PROGRAM)], in_port=1)

    # Control plane: admissions until the elastic app stops fitting,
    # plus one withdrawal.
    pattern = EXEMPLAR_APPS["cache"].pattern()
    for fid in range(10, 16):
        controller.admit(fid, pattern)
    controller.withdraw(10)

    snapshot = json_snapshot(registry, trace=tracer.buffer)

    # Allocation-latency percentiles are present and sane.
    alloc = snapshot["histograms"]["allocator_allocation_seconds"]
    assert alloc["count"] == 6
    for key in ("p50", "p95", "p99"):
        assert alloc[key] >= 0.0

    # Per-FID packet counters saw both FIDs; FID 1 got 2 packets.
    counters = snapshot["counters"]
    assert counters['datapath_fid_packets_total{fid="1"}'] == 2
    assert counters['datapath_fid_packets_total{fid="2"}'] == 2
    # The 25-instruction program recirculated at least once.
    assert counters['datapath_fid_recirculations_total{fid="2"}'] >= 1

    # Admission outcomes are counted.
    assert counters['controller_admissions_total{outcome="admitted"}'] >= 1
    admitted = counters['controller_admissions_total{outcome="admitted"}']
    rejected = counters.get(
        'controller_admissions_total{outcome="no_feasible_mutant"}', 0
    )
    assert admitted + rejected == 6
    assert counters["controller_withdrawals_total"] == 1
    assert counters["table_entries_installed_total"] > 0

    # Batch-size histogram observed the one 3-packet batch.
    assert snapshot["histograms"]["datapath_batch_size"]["count"] == 1

    # Collector-backed gauges mirror the live data path.
    gauges = snapshot["gauges"]
    assert gauges["datapath_packets"] == switch.perf.packets
    assert gauges["datapath_digest_queue_depth"] == switch.digests_pending
    assert gauges["progcache_hits"] == switch.stats()["program_cache"]["hits"]

    # Every packet was traced (rate 1.0) with duration + attributes.
    events = snapshot["traces"]["events"]
    assert len(events) == 4
    assert all(event["name"] == "packet" for event in events)
    assert all(event["duration_s"] >= 0.0 for event in events)
    assert {event["attrs"]["fid"] for event in events} == {1, 2}
    assert all(event["attrs"]["kind"] == "program" for event in events)

    # The whole snapshot is JSON-serializable as-is.
    json.dumps(snapshot)

    # And the Prometheus exposition parses line by line.
    assert_valid_prometheus(prometheus_text(registry))


def test_trace_sampling_is_deterministic_per_seed():
    def traced_fids(seed):
        registry = MetricsRegistry()
        tracer = PipelineTracer(sample_rate=0.5, seed=seed, capacity=256)
        switch = _instrumented_switch(registry, tracer)
        switch.receive_batch([_packet(1) for _ in range(40)], in_port=1)
        return [event.attrs["fid"] for event in tracer.buffer.events()]

    first = traced_fids(seed=21)
    second = traced_fids(seed=21)
    assert first == second
    assert 0 < len(first) < 40  # sampled, not all-or-nothing


def test_zero_sample_rate_traces_nothing():
    registry = MetricsRegistry()
    tracer = PipelineTracer(sample_rate=0.0, seed=3)
    switch = _instrumented_switch(registry, tracer)
    switch.receive_batch([_packet(1) for _ in range(20)], in_port=1)
    switch.receive(_packet(2), in_port=1)
    assert len(tracer.buffer) == 0
    # Metrics still flow even though no packet was traced.
    snap = registry.snapshot()
    assert snap["counters"]['datapath_fid_packets_total{fid="1"}'] == 20


def test_default_switch_records_nothing_globally():
    """The default (null) registry keeps the data path telemetry-free."""
    assert telemetry.get_registry().enabled is False
    switch = ActiveSwitch(SwitchConfig())
    switch.register_host(CLIENT, 1)
    switch.register_host(SERVER, 2)
    switch.receive(_packet(1), in_port=1)
    assert switch.telemetry.enabled is False
    assert switch.telemetry.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }


def test_cli_stats_out_writes_snapshot(tmp_path):
    from repro.experiments import cli

    stats_file = tmp_path / "stats.json"
    assert cli.main(["fig12", "--quick", "--stats-out", str(stats_file)]) == 0
    snapshot = json.loads(stats_file.read_text())
    assert snapshot["histograms"]["allocator_allocation_seconds"]["count"] > 0
    assert any(
        key.startswith("controller_admissions_total")
        for key in snapshot["counters"]
    )
    # The run must not leave a recording registry installed globally.
    assert telemetry.get_registry().enabled is False


def test_cli_stats_out_prometheus_format(tmp_path):
    from repro.experiments import cli

    stats_file = tmp_path / "stats.prom"
    assert cli.main(["fig12", "--quick", "--stats-out", str(stats_file)]) == 0
    assert_valid_prometheus(stats_file.read_text())
