"""Causal span tracing: tree reconstruction, exporters, flight recorder.

The contracts under test:

- **Deterministic IDs**: trace/span IDs come from the injected
  :class:`IdSource` counters, so tests assert them literally.
- **Explicit propagation**: every span of one control-plane request
  shares that request's trace ID, and parent links form a tree -- even
  when planner workers run on different threads.
- **Control->data causality**: a sampled packet processed after a
  commit parents on the committing span (``Tracer.layout_context``).
- **Flight recorder**: rollbacks, sheds, deadline misses, and
  stale-retry storms each dump the full correlated span tree plus a
  pools fingerprint, and the acceptance rig reconstructs the chain
  request -> retries -> journal replay -> first packet by IDs alone.
- The satellites: ``TraceEvent`` copies its attrs, ``TraceBuffer.span``
  records errors, and the clock is injectable everywhere.
"""

import json
import threading

import pytest

from repro.controller import (
    ActiveRmtController,
    AdmissionService,
    ProvisioningRequest,
    ProvisioningStatus,
)
from repro.controller.service import pools_fingerprint
from repro.isa import assemble
from repro.packets import ActivePacket, MacAddress
from repro.switchsim import ActiveSwitch, SwitchConfig
from repro.telemetry import (
    NULL_SPAN,
    NULL_TRACER,
    FlightRecorder,
    IdSource,
    PipelineTracer,
    Span,
    SpanContext,
    TraceBuffer,
    TraceEvent,
    Tracer,
    chrome_trace_events,
    context_of,
    dump_trace,
    find_spans,
    span_tree,
    spans_to_jsonl,
    validate_chrome_trace,
)

from tests.test_core_constraints import listing1_pattern

CLIENT = MacAddress.from_host_id(1)
SERVER = MacAddress.from_host_id(2)

PROGRAM = assemble("MAR_LOAD $2\nMEM_READ\nRTS\nRETURN")


class FakeClock:
    """Deterministic monotonic clock for exact-duration assertions."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds

    def sleep(self, seconds: float) -> None:
        self.now += seconds


def _admission(fid: int) -> ProvisioningRequest:
    return ProvisioningRequest.admission(fid=fid, pattern=listing1_pattern())


def _packet(fid: int) -> ActivePacket:
    return ActivePacket.program(
        src=CLIENT,
        dst=SERVER,
        fid=fid,
        instructions=list(PROGRAM),
        args=[0, 0, 17, 0],
    )


def _traced_controller(tracer, **config_kwargs):
    """Controller + switch pair sharing one span tracer; every packet
    is sampled so data-path continuation is observable."""
    switch = ActiveSwitch(
        SwitchConfig(**config_kwargs),
        tracer=PipelineTracer(sample_rate=1.0, seed=7),
        span_tracer=tracer,
    )
    switch.register_host(CLIENT, 1)
    switch.register_host(SERVER, 2)
    return ActiveRmtController(switch, tracer=tracer)


# ----------------------------------------------------------------------
# IDs, spans, and the tracer core
# ----------------------------------------------------------------------


def test_id_source_is_deterministic():
    ids = IdSource()
    assert ids.next_trace_id() == "t-000001"
    assert ids.next_trace_id() == "t-000002"
    assert ids.next_span_id() == "s-00000001"
    assert ids.next_span_id() == "s-00000002"
    # A fresh source restarts the sequence: no ambient state.
    assert IdSource().next_trace_id() == "t-000001"


def test_root_and_child_spans_share_trace_exact_durations():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    root = tracer.start("controller.admit", fid=7)
    assert root.trace_id == "t-000001"
    assert root.span_id == "s-00000001"
    assert root.parent_id is None
    assert root.in_flight

    clock.tick(0.5)
    child = tracer.start("allocator.plan", parent=root)
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    clock.tick(0.25)
    tracer.finish(child)
    clock.tick(0.25)
    tracer.finish(root)

    assert child.duration_s == pytest.approx(0.25)
    assert root.duration_s == pytest.approx(1.0)
    # finish() is idempotent: a second call neither re-stamps nor
    # double-counts.
    clock.tick(5.0)
    tracer.finish(root)
    assert root.duration_s == pytest.approx(1.0)
    assert tracer.recorded == 2

    # SpanContext parents work identically to Span parents.
    ctx = SpanContext(trace_id=root.trace_id, span_id=root.span_id)
    assert context_of(ctx) == ctx
    assert context_of(root) == ctx
    assert context_of(None) is None
    sibling = tracer.start("allocator.commit", parent=ctx)
    assert (sibling.trace_id, sibling.parent_id) == (root.trace_id, root.span_id)


def test_span_context_manager_records_error_and_reraises():
    tracer = Tracer(clock=FakeClock())
    with pytest.raises(ValueError, match="boom"):
        with tracer.span("controller.commit_plan", fid=3):
            raise ValueError("boom")
    (span,) = tracer.spans()
    assert not span.in_flight
    assert span.attrs["error"] == "ValueError: boom"
    assert span.attrs["fid"] == 3


def test_record_span_fast_path_parents_and_explicit_trace():
    tracer = Tracer(clock=FakeClock())
    parent = tracer.start("controller.commit_plan")
    tracer.finish(parent)
    packet = tracer.record_span(
        "datapath.packet", start_s=1.0, end_s=2.5, parent=parent.context, fid=9
    )
    assert packet.trace_id == parent.trace_id
    assert packet.parent_id == parent.span_id
    assert packet.duration_s == pytest.approx(1.5)
    # Explicit trace_id pins the trace without a parent link.
    loose = tracer.record_span(
        "datapath.packet", start_s=0.0, end_s=0.1, trace_id="t-000042"
    )
    assert (loose.trace_id, loose.parent_id) == ("t-000042", None)


def test_tracer_ring_evicts_oldest_and_counts_drops():
    tracer = Tracer(capacity=2, clock=FakeClock())
    for index in range(3):
        tracer.record_span(f"op{index}", start_s=float(index), end_s=float(index))
    spans = tracer.spans()
    assert [s.name for s in spans] == ["op1", "op2"]
    assert tracer.dropped == 1
    assert tracer.recorded == 3
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_spans_include_live_and_spans_for_filters():
    tracer = Tracer(clock=FakeClock())
    root = tracer.start("admission.request")
    other = tracer.start("admission.request")
    tracer.finish(other)
    # The in-flight root is visible -- flight dumps fired mid-request
    # rely on this.
    assert root in tracer.spans()
    assert root not in tracer.spans(include_live=False)
    assert tracer.spans_for(root.trace_id) == [root]
    assert len(tracer) == 2
    tracer.clear()
    assert len(tracer) == 0


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.start("x") is NULL_SPAN
    assert NULL_TRACER.record_span("x", start_s=0.0, end_s=1.0) is NULL_SPAN
    with NULL_TRACER.span("x") as span:
        assert span is NULL_SPAN
        assert span.set(fid=1) is NULL_SPAN
    assert NULL_SPAN.attrs == {}
    assert NULL_TRACER.spans() == []
    assert NULL_TRACER.anomaly("rollback") is None
    assert len(NULL_TRACER) == 0


# ----------------------------------------------------------------------
# Tree reconstruction
# ----------------------------------------------------------------------


def _span(span_id, parent_id, name="op", trace_id="t-000001", start=0.0):
    return Span(
        name=name,
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
        start_s=start,
        end_s=start + 1.0,
    )


def test_span_tree_roots_children_orphans():
    root = _span("s-1", None, name="admission.request")
    mid = _span("s-2", "s-1", name="admission.attempt", start=1.0)
    leaf = _span("s-3", "s-2", name="controller.commit_plan", start=2.0)
    orphan = _span("s-9", "s-404", name="evicted-child", start=3.0)
    tree = span_tree([leaf, orphan, mid, root])
    assert tree["roots"] == [root]
    assert tree["children"]["s-1"] == [mid]
    assert tree["children"]["s-2"] == [leaf]
    assert tree["orphans"] == [orphan]
    assert find_spans([leaf, mid], "admission.attempt") == [mid]


def test_span_tree_detects_cycles():
    first = _span("s-1", "s-2")
    second = _span("s-2", "s-1")
    with pytest.raises(ValueError, match="cycle"):
        span_tree([first, second])


# ----------------------------------------------------------------------
# Satellites: attrs copy, error spans, injectable clocks
# ----------------------------------------------------------------------


def test_trace_event_copies_caller_attrs():
    attrs = {"fid": 1}
    event = TraceEvent(name="packet", start_s=0.0, duration_s=0.0, attrs=attrs)
    attrs["fid"] = 999
    attrs["late"] = True
    assert event.attrs == {"fid": 1}
    # The snapshot view is a copy too.
    event.as_dict()["attrs"]["fid"] = -1
    assert event.attrs == {"fid": 1}


def test_trace_buffer_span_records_error_attr_and_reraises():
    buffer = TraceBuffer(capacity=4, clock=FakeClock())
    with pytest.raises(KeyError):
        with buffer.span("admission", fid=2):
            raise KeyError("missing")
    (event,) = buffer.events()
    assert event.name == "admission"
    assert event.attrs["fid"] == 2
    assert event.attrs["error"] == "KeyError: 'missing'"


def test_injected_clock_gives_exact_buffer_durations():
    clock = FakeClock()
    buffer = TraceBuffer(capacity=4, clock=clock)
    with buffer.span("work"):
        clock.tick(2.5)
    (event,) = buffer.events()
    assert event.start_s == pytest.approx(100.0)
    assert event.duration_s == pytest.approx(2.5)
    # PipelineTracer shares the injected clock with its buffer.
    tracer = PipelineTracer(sample_rate=1.0, seed=0, clock=clock)
    assert tracer.clock is clock
    assert tracer.buffer.clock is clock
    event = tracer.record("packet")
    assert event.start_s == pytest.approx(clock.now)
    # Defaults remain perf_counter-based when nothing is injected.
    import time

    assert TraceBuffer().clock is time.perf_counter
    assert Tracer().clock is time.perf_counter


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def _two_thread_spans():
    tracer = Tracer(clock=FakeClock())
    root = tracer.start("admission.request", fid=1)
    tracer.finish(root)
    tracer.record_span(
        "datapath.packet",
        start_s=root.start_s + 0.001,
        end_s=root.start_s + 0.002,
        parent=root,
        disposition=None,
        pattern=listing1_pattern(),  # non-JSON attr: must repr()
    )
    return tracer, root


def test_chrome_trace_events_schema_and_correlation():
    tracer, root = _two_thread_spans()
    payload = chrome_trace_events(tracer.spans())
    assert validate_chrome_trace(payload) == []
    complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert [e["name"] for e in complete] == ["admission.request", "datapath.packet"]
    # Timestamps are rebased to the earliest span, in microseconds.
    assert complete[0]["ts"] == pytest.approx(0.0)
    assert complete[1]["ts"] == pytest.approx(1000.0)
    # IDs ride in args for correlation; non-JSON attrs are repr()ed.
    assert complete[1]["args"]["parent_id"] == root.span_id
    assert complete[1]["args"]["trace_id"] == root.trace_id
    assert isinstance(complete[1]["args"]["pattern"], str)
    json.dumps(payload)  # JSON-serializable end to end
    meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    assert meta and all(e["name"] == "thread_name" for e in meta)


def test_validate_chrome_trace_flags_malformed_payloads():
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
    problems = validate_chrome_trace(
        {
            "traceEvents": [
                {"ph": "Q"},
                {"ph": "X", "name": "op", "pid": 1, "tid": 1, "ts": -5, "dur": 1},
                "not-an-object",
            ]
        }
    )
    assert any("unknown phase" in p for p in problems)
    assert any("'ts' not a non-negative number" in p for p in problems)
    assert any("args.trace_id missing" in p for p in problems)
    assert any("not an object" in p for p in problems)


def test_jsonl_export_and_dump_trace_roundtrip(tmp_path):
    tracer, root = _two_thread_spans()
    jsonl = tmp_path / "spans.jsonl"
    chrome = tmp_path / "spans.json"
    dump_trace(str(jsonl), tracer)
    dump_trace(str(chrome), tracer)

    lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert [entry["name"] for entry in lines] == [
        "admission.request",
        "datapath.packet",
    ]
    assert lines[1]["parent_id"] == root.span_id
    assert lines[0]["trace_id"] == lines[1]["trace_id"]

    payload = json.loads(chrome.read_text())
    assert validate_chrome_trace(payload) == []
    # A bare span list (no tracer) exports the same way.
    assert spans_to_jsonl([]) == ""
    assert spans_to_jsonl(tracer.spans()).count("\n") == 2


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------


def test_flight_recorder_trigger_captures_tree_and_fingerprint():
    tracer = Tracer(clock=FakeClock())
    state = {"pools": "v1"}
    recorder = FlightRecorder(
        tracer, capacity=2, fingerprint=lambda: dict(state)
    )
    assert tracer.recorder is recorder

    root = tracer.start("admission.request", fid=1)
    child = tracer.start("admission.attempt", parent=root)
    state["pools"] = "v2"  # fingerprint must be evaluated at dump time
    dump = tracer.anomaly("stale_retries", child, attempts=3)
    assert dump.reason == "stale_retries"
    assert dump.trace_id == root.trace_id
    assert dump.attrs == {"attempts": 3}
    assert dump.fingerprint == {"pools": "v2"}
    # Live spans are part of the dump; the tree reconstructs from it.
    assert {s.span_id for s in dump.spans} == {root.span_id, child.span_id}
    tree = dump.tree()
    assert tree["roots"] == [root]
    assert tree["orphans"] == []
    assert dump.find("admission.attempt") == [child]
    json.dumps(dump.as_dict(), default=repr)

    # Ring bound: oldest dumps evict first.
    tracer.anomaly("shed", root)
    tracer.anomaly("rollback", root)
    assert [d.reason for d in recorder.dumps] == ["shed", "rollback"]
    assert recorder.triggered == 3
    assert recorder.dumps_for("shed")[0].reason == "shed"

    recorder.detach()
    assert tracer.recorder is None
    assert tracer.anomaly("shed", root) is None  # no recorder -> dropped

    with pytest.raises(ValueError):
        FlightRecorder(tracer, capacity=0)
    with pytest.raises(ValueError):
        FlightRecorder(tracer, retry_threshold=0)


def test_anomaly_without_context_dumps_no_spans():
    tracer = Tracer(clock=FakeClock())
    recorder = FlightRecorder(tracer, fingerprint=lambda: "fp")
    dump = tracer.anomaly("shed", None, cause="queue_full")
    assert dump.trace_id is None
    assert dump.spans == []
    assert dump.fingerprint == "fp"
    recorder.detach()


# ----------------------------------------------------------------------
# Control-plane propagation
# ----------------------------------------------------------------------


def test_single_admission_emits_one_correlated_tree():
    tracer = Tracer()
    controller = _traced_controller(tracer)
    assert controller.admit(fid=1, pattern=listing1_pattern()).success

    spans = tracer.spans()
    (root,) = find_spans(spans, "controller.admit")
    assert root.parent_id is None
    assert root.attrs["fid"] == 1
    assert root.attrs["status"] == "admitted"
    # Every layer of the commit rode the same trace.
    for name in (
        "allocator.plan",
        "allocator.commit",
        "tables.install_app",
        "journal.commit",
    ):
        found = find_spans(spans, name)
        assert found, f"missing {name} span"
        assert all(s.trace_id == root.trace_id for s in found)
    tree = span_tree(tracer.spans_for(root.trace_id))
    assert tree["roots"] == [root]
    assert tree["orphans"] == []
    # The commit published its context for data-path continuation.
    assert tracer.layout_context is not None
    assert tracer.layout_context.trace_id == root.trace_id


def test_withdraw_and_dry_run_traces():
    tracer = Tracer()
    controller = _traced_controller(tracer)
    pattern = listing1_pattern()
    assert controller.admit(fid=1, pattern=pattern).success
    assert controller.admit(fid=2, pattern=pattern, dry_run=True).success
    controller.withdraw(fid=1)

    spans = tracer.spans()
    admits = find_spans(spans, "controller.admit")
    assert [s.attrs.get("dry_run") for s in admits] == [False, True]
    # Dry runs never touch tables: no install spans in their trace.
    dry_trace = tracer.spans_for(admits[1].trace_id)
    assert find_spans(dry_trace, "tables.install_app") == []
    (withdraw,) = find_spans(spans, "controller.withdraw")
    withdraw_trace = tracer.spans_for(withdraw.trace_id)
    assert find_spans(withdraw_trace, "tables.remove_app")
    assert span_tree(withdraw_trace)["orphans"] == []


def test_sampled_packet_joins_the_committing_trace():
    tracer = Tracer()
    controller = _traced_controller(tracer)
    assert controller.admit(fid=1, pattern=listing1_pattern()).success
    committing = tracer.layout_context
    controller.switch.receive(_packet(1), in_port=1)

    (packet,) = find_spans(tracer.spans(), "datapath.packet")
    assert packet.trace_id == committing.trace_id
    assert packet.parent_id == committing.span_id
    assert packet.attrs["fid"] == 1
    assert not packet.in_flight


# ----------------------------------------------------------------------
# Satellite 4: multi-worker service, one tree per request
# ----------------------------------------------------------------------


def test_multiworker_service_one_trace_per_request_with_nested_retries():
    tracer = Tracer()
    controller = _traced_controller(tracer)
    service = AdmissionService(controller, workers=2, sleep=lambda s: None)
    # Force the first few plans stale so retry spans appear: bumping the
    # version after the shadow snapshot makes the commit lose its race.
    original = service._snapshot_shadow
    stale_budget = {"left": 3}
    rig_lock = threading.Lock()

    def contended_snapshot():
        shadow = original()
        with rig_lock:
            if stale_budget["left"] > 0:
                stale_budget["left"] -= 1
                controller.allocator._version += 1
        return shadow

    service._snapshot_shadow = contended_snapshot
    with service:
        tickets = [service.submit(_admission(fid)) for fid in (1, 2, 3, 4)]
        reports = [ticket.result(timeout=30) for ticket in tickets]
    assert all(r.status is ProvisioningStatus.ADMITTED for r in reports)

    spans = tracer.spans()
    roots = find_spans(spans, "admission.request")
    assert len(roots) == 4
    assert len({root.trace_id for root in roots}) == 4  # one trace each
    assert all(root.attrs["status"] == "admitted" for root in roots)

    retries_seen = 0
    for root in roots:
        trace = tracer.spans_for(root.trace_id)
        # Every span of the request -- planned on whichever worker
        # thread won it -- carries the request's trace ID and links
        # into one tree under the request root.
        assert all(s.trace_id == root.trace_id for s in trace)
        tree = span_tree(trace)
        assert tree["roots"] == [root]
        assert tree["orphans"] == []
        attempts = find_spans(trace, "admission.attempt")
        assert attempts, "worker never recorded an attempt"
        assert all(a.parent_id == root.span_id for a in attempts)
        assert [a.attrs["attempt"] for a in attempts] == list(
            range(1, len(attempts) + 1)
        )
        # Retry attempts are marked stale and nest under the same
        # request root as the attempt that finally committed.
        stale = [a for a in attempts if a.attrs.get("stale")]
        retries_seen += len(stale)
        for attempt in stale:
            assert "StalePlanError" in attempt.attrs["error"]
        commits = find_spans(trace, "controller.commit_plan")
        parents = {c.parent_id for c in commits}
        assert parents <= {a.span_id for a in attempts}
    assert retries_seen >= 1, "rig failed to force any stale retry"
    # Worker threads, not the submitter, ran the attempts.
    attempt_threads = {
        s.thread for s in find_spans(spans, "admission.attempt")
    }
    assert attempt_threads <= {f"admission-worker-{i}" for i in range(2)}


# ----------------------------------------------------------------------
# Flight-recorder triggers through the service
# ----------------------------------------------------------------------


def test_queue_full_shed_triggers_flight_dump():
    tracer = Tracer()
    controller = _traced_controller(tracer)
    recorder = FlightRecorder(tracer)
    service = AdmissionService(
        controller, workers=1, queue_limit=1, autostart=False
    )
    service.submit(_admission(1))
    report = service.submit(_admission(2)).result(timeout=0)
    assert report.status is ProvisioningStatus.SHED
    (dump,) = recorder.dumps_for("shed")
    assert dump.attrs["cause"] == "queue_full"
    # The shed request's own (still-open) root span is in the dump.
    (root,) = dump.find("admission.request")
    assert root.attrs["fid"] == 2
    service.start()
    service.close()
    recorder.detach()


def test_deadline_miss_triggers_flight_dump():
    clock = FakeClock()
    tracer = Tracer()
    controller = _traced_controller(tracer)
    recorder = FlightRecorder(tracer)
    service = AdmissionService(
        controller, workers=0, clock=clock, sleep=clock.sleep
    )
    report = service.submit_and_wait(_admission(1), deadline_s=-1.0)
    assert report.status is ProvisioningStatus.SHED
    (dump,) = recorder.dumps_for("deadline")
    (root,) = dump.find("admission.request")
    assert root.attrs["fid"] == 1
    recorder.detach()


# ----------------------------------------------------------------------
# Acceptance rig: stale retries + mid-batch rollback, chain by IDs
# ----------------------------------------------------------------------


def test_flight_dumps_reconstruct_full_causal_chain_by_ids():
    """Rigged churn: a retried admission commits, a batch rolls back.

    The whole chain -- request span -> retry spans -> journal-replay
    span -> first data-path packet under the new layout -- must be
    reconstructible from the flight dumps and span set using only
    trace/span/parent IDs (no names-as-hints shortcuts: every hop
    below follows an ID edge).
    """
    tracer = Tracer()
    controller = _traced_controller(tracer, tcam_entries_per_stage=2)
    recorder = FlightRecorder(
        tracer,
        retry_threshold=3,
        fingerprint=lambda: pools_fingerprint(controller.allocator),
    )
    service = AdmissionService(controller, workers=0, sleep=lambda s: None)
    pattern = listing1_pattern()

    # --- Rig 1: force a stale-plan retry storm, then let it commit.
    original = service._snapshot_shadow
    stale_left = {"count": 3}

    def always_stale_thrice():
        shadow = original()
        if stale_left["count"] > 0:
            stale_left["count"] -= 1
            controller.allocator._version += 1
        return shadow

    service._snapshot_shadow = always_stale_thrice
    report = service.submit_and_wait(_admission(1))
    assert report.status is ProvisioningStatus.ADMITTED
    service._snapshot_shadow = original

    # The third consecutive retry fired the storm anomaly mid-flight.
    (storm,) = recorder.dumps_for("stale_retries")
    assert storm.attrs["attempts"] == 3
    assert storm.fingerprint is not None

    # --- The first packet under the just-committed layout.
    output = controller.switch.receive(_packet(1), in_port=1)
    assert output is not None

    # --- Rig 2: mid-batch TCAM exhaustion forces a journaled rollback
    # (same shape as the seed batch-atomicity test: fill the TCAM with
    # singles, free one tenant, then batch more than fits).
    resident = 0
    while controller.admit(fid=100 + resident, pattern=pattern).success:
        resident += 1
        assert resident < 50
    controller.withdraw(fid=100)
    fingerprint_before = pools_fingerprint(controller.allocator)
    batch_report = service.submit_many(
        [_admission(fid) for fid in (2, 3, 4, 5)]
    ).result(timeout=30)
    assert not batch_report.success
    assert pools_fingerprint(controller.allocator) == fingerprint_before

    # Filling the TCAM with singles produced scope="single" rollback
    # dumps of its own (each failed single admission rolled back); the
    # batch's dump is the one with scope="batch".
    (rollback,) = [
        d for d in recorder.dumps_for("rollback")
        if d.attrs.get("scope") == "batch"
    ]
    assert rollback.fingerprint == fingerprint_before

    # ------------------------------------------------------------------
    # Reconstruction, by IDs alone.
    # ------------------------------------------------------------------

    # 1. The storm dump's trace: request root -> stale attempt spans.
    storm_tree = storm.tree()
    assert storm_tree["orphans"] == []
    (request_root,) = storm_tree["roots"]
    assert request_root.name == "admission.request"
    attempt_ids = {
        s.span_id
        for s in storm.spans
        if s.parent_id == request_root.span_id
    }
    assert len(attempt_ids) == 3  # the three stale attempts, by ID link

    # 2. The completed trace extends the same tree: a fourth attempt
    #    under the same root carried the commit.
    trace = tracer.spans_for(storm.trace_id)
    by_id = {s.span_id: s for s in trace}
    attempts = [s for s in trace if s.parent_id == request_root.span_id]
    assert len(attempts) == 4
    final_attempt = max(attempts, key=lambda s: s.attrs["attempt"])
    assert final_attempt.span_id not in attempt_ids
    # The attempt's children: the shadow plan and the commit, both
    # linked by parent ID.
    attempt_children = [
        s for s in trace if s.parent_id == final_attempt.span_id
    ]
    assert {s.name for s in attempt_children} == {
        "allocator.plan",
        "controller.commit_plan",
    }
    (commit,) = [
        s for s in attempt_children if s.name == "controller.commit_plan"
    ]

    # 3. The first data-path packet under the new layout parents on
    #    that commit span: control->data causality closes by IDs.
    packets = find_spans(tracer.spans(), "datapath.packet")
    first_packet = packets[0]
    assert first_packet.parent_id == commit.span_id
    assert first_packet.trace_id == request_root.trace_id
    assert first_packet.attrs["fid"] == 1
    # Walk the chain packet -> commit -> attempt -> request root.
    chain = []
    cursor = first_packet
    while cursor is not None:
        chain.append(cursor.name)
        cursor = by_id.get(cursor.parent_id)
    assert chain == [
        "datapath.packet",
        "controller.commit_plan",
        "admission.attempt",
        "admission.request",
    ]

    # 4. The rollback dump's trace: batch root -> attempt ->
    #    commit_batch -> journal replay, linked hop by hop.
    rollback_tree = rollback.tree()
    assert rollback_tree["orphans"] == []
    (batch_root,) = rollback_tree["roots"]
    assert batch_root.name == "admission.batch"
    assert batch_root.trace_id != request_root.trace_id
    (replay,) = rollback.find("journal.rollback")
    hops = []
    cursor = replay
    ids = {s.span_id: s for s in rollback.spans}
    while cursor is not None:
        hops.append(cursor.name)
        cursor = ids.get(cursor.parent_id)
    assert hops == [
        "journal.rollback",
        "controller.commit_batch",
        "admission.attempt",
        "admission.batch",
    ]
    assert find_spans(rollback.spans, "allocator.rollback")

    recorder.detach()
    service.close()
