"""Transactional control-plane tests: plan/commit/abort/rollback.

The contract under test (Section 4.3's all-or-nothing reallocation,
via the plan -> validate -> commit pipeline):

- planning mutates nothing, ever;
- plan + commit is indistinguishable from the legacy single-call
  ``allocate``;
- an aborted or rolled-back admission leaves pools, table entries,
  TCAM occupancy, activation state, and register contents
  byte-identical to the pre-plan snapshot.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.controller import ActiveRmtController
from repro.core import (
    ActiveRmtAllocator,
    AllocationScheme,
    PlanState,
    PoolSnapshot,
    TableUpdateJournal,
    TransactionError,
)
from repro.switchsim import ActiveSwitch, SwitchConfig

from tests.test_core_allocator import hh_pattern, lb_pattern
from tests.test_core_constraints import listing1_pattern


# ----------------------------------------------------------------------
# State fingerprints (byte-identity helpers)
# ----------------------------------------------------------------------


def allocator_fingerprint(allocator: ActiveRmtAllocator) -> tuple:
    """Full allocator state: populations, layouts, apps, counters."""
    return (
        tuple(
            (stage, pool.export_residents(), tuple(sorted(pool.layout().items())))
            for stage, pool in sorted(allocator.pools.items())
        ),
        tuple(sorted(allocator.apps)),
        allocator.version,
    )


def switch_fingerprint(controller: ActiveRmtController) -> tuple:
    """Full switch state: grants, translations, TCAM, registers, activation."""
    pipeline = controller.switch.pipeline
    stages = []
    for stage in pipeline.stages:
        table = stage.table
        stages.append(
            (
                stage.index,
                table.tcam_used,
                tuple((fid, table.grant_for(fid)) for fid in table.fids),
                tuple(
                    (fid, table.translation_for(fid))
                    for fid in table.fids
                    if table.translation_for(fid) is not None
                ),
                tuple(stage.registers.snapshot(0, len(stage.registers))),
            )
        )
    return (tuple(stages), tuple(sorted(pipeline.deactivated_fids)))


def full_fingerprint(controller: ActiveRmtController) -> tuple:
    return (
        allocator_fingerprint(controller.allocator),
        switch_fingerprint(controller),
    )


def tiny_controller(tcam_entries: int = 2) -> ActiveRmtController:
    """Small device so register fingerprints stay cheap."""
    config = SwitchConfig(
        words_per_stage=1024, tcam_entries_per_stage=tcam_entries
    )
    return ActiveRmtController(ActiveSwitch(config))


PATTERNS = {
    "cache": listing1_pattern,
    "lb": lb_pattern,
    "hh": hh_pattern,
}


# ----------------------------------------------------------------------
# Planner purity and plan/commit equivalence
# ----------------------------------------------------------------------


def test_plan_mutates_nothing():
    allocator = ActiveRmtAllocator(SwitchConfig())
    for fid in range(4):
        allocator.allocate(fid, listing1_pattern())
    before = allocator_fingerprint(allocator)
    plan = allocator.plan(100, listing1_pattern())
    assert plan.feasible
    assert plan.regions  # the whole decision is there...
    assert allocator_fingerprint(allocator) == before  # ...and nothing moved


def test_plan_commit_equals_legacy_allocate():
    """The same admission sequence, one side plan+commit, one side
    allocate(), produces identical decisions (timings aside)."""
    legacy = ActiveRmtAllocator(SwitchConfig())
    staged = ActiveRmtAllocator(SwitchConfig())
    for fid in range(14):
        pattern = listing1_pattern() if fid % 3 else lb_pattern()
        expected = legacy.allocate(fid, pattern)
        plan = staged.plan(fid, pattern)
        assert plan.feasible == expected.success
        if plan.feasible:
            got = staged.commit(plan).decision
        else:
            staged.abort(plan)
            got = staged.decision_from_plan(plan)
        assert got.success == expected.success
        assert got.mutant == expected.mutant
        assert got.regions == expected.regions
        assert got.reallocations == expected.reallocations
        assert got.candidates_feasible == expected.candidates_feasible
    assert allocator_fingerprint(legacy) == allocator_fingerprint(staged)


def test_abort_leaves_no_trace():
    allocator = ActiveRmtAllocator(SwitchConfig())
    allocator.allocate(1, listing1_pattern())
    before = allocator_fingerprint(allocator)
    plan = allocator.plan(2, listing1_pattern())
    allocator.abort(plan)
    assert plan.state is PlanState.ABORTED
    assert allocator_fingerprint(allocator) == before
    # An aborted plan cannot be committed.
    with pytest.raises(TransactionError):
        allocator.commit(plan)


def test_stale_plan_refused():
    allocator = ActiveRmtAllocator(SwitchConfig())
    plan = allocator.plan(1, listing1_pattern())
    allocator.allocate(2, listing1_pattern())  # moves the version on
    with pytest.raises(TransactionError):
        allocator.commit(plan)


def test_rollback_restores_exact_allocator_state():
    allocator = ActiveRmtAllocator(SwitchConfig())
    for fid in range(6):
        allocator.allocate(fid, listing1_pattern())
    before = allocator_fingerprint(allocator)
    plan = allocator.plan(50, listing1_pattern())
    result = allocator.commit(plan)
    assert allocator_fingerprint(allocator) != before
    allocator.rollback(result)
    assert allocator_fingerprint(allocator) == before
    # Rolled-back plans are spent.
    with pytest.raises(TransactionError):
        allocator.rollback(result)


def test_pool_snapshot_roundtrip():
    allocator = ActiveRmtAllocator(SwitchConfig())
    for fid in range(5):
        allocator.allocate(fid, listing1_pattern())
    pool = allocator.pools[2]
    snapshot = PoolSnapshot.capture(pool)
    layout_before = dict(pool.layout())
    pool.add(99, None, arrival=1000)
    pool.remove(1)
    assert dict(pool.layout()) != layout_before
    assert not snapshot.matches(pool)
    snapshot.restore(pool)
    assert snapshot.matches(pool)
    assert dict(pool.layout()) == layout_before


# ----------------------------------------------------------------------
# Journal semantics
# ----------------------------------------------------------------------


def test_journal_rolls_back_in_reverse_order():
    journal = TableUpdateJournal()
    trace = []
    journal.record("first", lambda: trace.append("first"))
    journal.record("second", lambda: trace.append("second"))
    assert len(journal) == 2
    assert journal.rollback() == 2
    assert trace == ["second", "first"]
    with pytest.raises(TransactionError):
        journal.record("late", lambda: None)
    with pytest.raises(TransactionError):
        journal.rollback()


def test_journal_commit_discards_undos():
    journal = TableUpdateJournal()
    journal.record("op", lambda: pytest.fail("must not run"))
    assert journal.commit_entries() == 1
    assert journal.closed


# ----------------------------------------------------------------------
# Controller dry runs
# ----------------------------------------------------------------------


def test_dry_run_returns_committable_plan_without_mutation():
    controller = tiny_controller(tcam_entries=64)
    for fid in range(3):
        assert controller.admit(fid, listing1_pattern()).success
    before = full_fingerprint(controller)
    probe = controller.admit(77, listing1_pattern(), dry_run=True)
    assert probe.dry_run
    assert probe.success
    assert probe.plan is not None and probe.plan.feasible
    assert full_fingerprint(controller) == before
    assert 77 not in controller.allocator.apps
    # The real admission does exactly what the probe predicted.
    real = controller.admit(77, listing1_pattern())
    assert real.success
    assert real.decision.regions == probe.plan.regions
    assert real.decision.reallocations == probe.plan.reallocations


def test_what_if_helper():
    controller = tiny_controller(tcam_entries=64)
    plan = controller.what_if(5, lb_pattern())
    assert plan.feasible
    assert controller.allocator.resident_fids() == []


# ----------------------------------------------------------------------
# Property: admissions that fail switch-side are invisible
# ----------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    order=st.lists(
        st.sampled_from(sorted(PATTERNS)), min_size=4, max_size=16
    ),
    tcam_entries=st.integers(1, 3),
)
def test_failed_admissions_leave_state_byte_identical(order, tcam_entries):
    """Any admit sequence in which an admission is denied -- whether at
    planning (infeasible) or switch-side (TCAM, commit rolled back) --
    leaves all stage layouts, TCAM entry counts, register contents, and
    activation state byte-identical to the pre-request snapshot."""
    controller = tiny_controller(tcam_entries=tcam_entries)
    saw_rollback = False
    for fid, name in enumerate(order):
        pattern = PATTERNS[name]()
        before = full_fingerprint(controller)
        report = controller.admit(fid, pattern)
        if not report.success:
            assert full_fingerprint(controller) == before
            saw_rollback = saw_rollback or report.rolled_back
    # Keep admitting caches until a TCAM rollback occurs so the
    # journal path is exercised in every example.
    fid = len(order)
    while not saw_rollback and fid < len(order) + 64:
        before = full_fingerprint(controller)
        report = controller.admit(fid, listing1_pattern())
        if not report.success:
            assert full_fingerprint(controller) == before
            saw_rollback = saw_rollback or report.rolled_back
        fid += 1
    assert saw_rollback, "TCAM exhaustion must eventually trigger rollback"


def test_aborted_commit_property_explicit_plan():
    """Plan -> commit -> rollback round-trip on a controller-owned
    allocator is invisible at every layer."""
    controller = tiny_controller(tcam_entries=64)
    for fid in range(4):
        controller.admit(fid, listing1_pattern())
    before = full_fingerprint(controller)
    allocator = controller.allocator
    plan = allocator.plan(123, listing1_pattern())
    result = allocator.commit(plan, record=False)
    allocator.rollback(result)
    assert full_fingerprint(controller) == before


def test_first_fit_plan_commit_round_trip():
    """Schemes with early-exit search plan/commit identically too."""
    legacy = ActiveRmtAllocator(
        SwitchConfig(), scheme=AllocationScheme.FIRST_FIT
    )
    staged = ActiveRmtAllocator(
        SwitchConfig(), scheme=AllocationScheme.FIRST_FIT
    )
    for fid in range(6):
        expected = legacy.allocate(fid, listing1_pattern())
        got = staged.commit(staged.plan(fid, listing1_pattern())).decision
        assert got.regions == expected.regions
        assert got.reallocations == expected.reallocations
