"""Unit tests for workload generators and statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import ewma, percentile, summarize, windowed_rate
from repro.workloads import (
    ArrivalEvent,
    DepartureEvent,
    ZipfKeyGenerator,
    mixed_arrivals,
    poisson_events,
    pure_arrivals,
)


def test_zipf_skew_orders_popularity():
    gen = ZipfKeyGenerator(num_keys=1000, alpha=0.99, seed=1)
    counts = {}
    for key in gen.sample_keys(20000):
        counts[key] = counts.get(key, 0) + 1
    top = gen.key_for_rank(0)
    mid = gen.key_for_rank(100)
    assert counts.get(top, 0) > counts.get(mid, 0)
    # The head of a Zipf(0.99) catches a large share of requests.
    top100 = sum(counts.get(gen.key_for_rank(r), 0) for r in range(100))
    assert top100 / 20000 > 0.4


def test_zipf_deterministic_by_seed():
    a = ZipfKeyGenerator(100, seed=7).sample_keys(50)
    b = ZipfKeyGenerator(100, seed=7).sample_keys(50)
    assert a == b
    c = ZipfKeyGenerator(100, seed=8).sample_keys(50)
    assert a != c


def test_zipf_expected_hit_rate_monotone():
    gen = ZipfKeyGenerator(1000, alpha=0.99)
    rates = [gen.expected_hit_rate(n) for n in (0, 10, 100, 1000)]
    assert rates[0] == 0.0
    assert rates == sorted(rates)
    assert rates[-1] == pytest.approx(1.0)


def test_zipf_keys_are_8_bytes():
    gen = ZipfKeyGenerator(10)
    assert all(len(k) == 8 for k in gen.top_keys(10))


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfKeyGenerator(0)
    with pytest.raises(ValueError):
        ZipfKeyGenerator(10, alpha=-1)


def test_pure_arrivals():
    events = pure_arrivals("cache", count=5)
    assert len(events) == 5
    assert all(e.app_name == "cache" for e in events)
    assert [e.fid for e in events] == [1, 2, 3, 4, 5]


def test_mixed_arrivals_cover_all_apps():
    events = mixed_arrivals(count=300, seed=3)
    names = {e.app_name for e in events}
    assert names == {"cache", "heavy-hitter", "load-balancer"}
    # Deterministic under seed.
    assert events == mixed_arrivals(count=300, seed=3)


def test_poisson_events_population_grows():
    events = list(poisson_events(epochs=200, seed=1))
    arrivals = sum(1 for e in events if isinstance(e, ArrivalEvent))
    departures = sum(1 for e in events if isinstance(e, DepartureEvent))
    assert arrivals > departures  # arrival rate is twice departure rate
    # Departures only reference previously arrived fids.
    seen = set()
    for event in events:
        if isinstance(event, ArrivalEvent):
            assert event.fid not in seen
            seen.add(event.fid)
        else:
            assert event.fid in seen


def test_ewma_smooths():
    smoothed = ewma([0, 10, 0, 10], alpha=0.5)
    assert smoothed[0] == 0
    assert smoothed[1] == 5
    assert smoothed[2] == 2.5
    with pytest.raises(ValueError):
        ewma([1], alpha=0)


def test_percentile_interpolates():
    values = [1, 2, 3, 4]
    assert percentile(values, 0) == 1
    assert percentile(values, 100) == 4
    assert percentile(values, 50) == pytest.approx(2.5)
    with pytest.raises(ValueError):
        percentile([], 50)


def test_summarize():
    summary = summarize([3, 1, 2])
    assert summary.count == 3
    assert summary.minimum == 1
    assert summary.maximum == 3
    assert summary.median == 2
    assert summary.mean == pytest.approx(2.0)


def test_windowed_rate():
    events = [(0.1, True), (0.2, False), (1.1, True), (1.2, True)]
    rates = windowed_rate(events, window=1.0)
    assert rates[0][1] == pytest.approx(0.5)
    assert rates[1][1] == pytest.approx(1.0)


@given(st.lists(st.floats(0, 1e6), min_size=1, max_size=40), st.floats(0.01, 1.0))
def test_ewma_bounded_property(values, alpha):
    smoothed = ewma(values, alpha)
    assert len(smoothed) == len(values)
    assert min(values) - 1e-6 <= smoothed[-1] <= max(values) + 1e-6
